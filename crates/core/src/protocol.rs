//! The NUMFabric protocol agent: the complete sender/receiver logic of §5.
//!
//! One [`NumFabricAgent`] handles both endpoints of a flow:
//!
//! **Receiver.** On each data packet it measures the inter-packet time and
//! reflects it, together with the packet's accumulated `pathPrice` and
//! `pathLen`, back to the sender in an ACK.
//!
//! **Sender.** On each ACK it
//! 1. feeds the reflected inter-packet time into the Swift rate estimator
//!    (`R̂`, [`crate::swift::SwiftRateEstimator`]);
//! 2. computes the flow's weight `w = U'⁻¹(pathPrice)` (Eq. 7) — for
//!    multipath aggregates the weight is additionally split by the subflow's
//!    share of the aggregate throughput (§6.3);
//! 3. recomputes the window `W = R̂ · (d0 + dt)` and sends as much data as
//!    the window allows, stamping each outgoing packet with
//!    `virtualPacketLen = L / w` (for the STFQ scheduler) and the
//!    `normalizedResidual = (U'(R̂) − pathPrice) / pathLen` (for the xWI
//!    price update at the switches).
//!
//! All utility-function arithmetic uses **Gbps** units.

use crate::config::NumFabricConfig;
use crate::multipath::AggregateHandle;
use crate::swift::{SwiftRateEstimator, SwiftWindow};
use crate::xwi::XwiPriceController;
use numfabric_num::utility::{Utility, UtilityRef};
use numfabric_sim::network::{AgentCtx, Network};
use numfabric_sim::packet::{Packet, DEFAULT_PAYLOAD_BYTES, MTU_BYTES};
use numfabric_sim::queue::StfqQueue;
use numfabric_sim::topology::Topology;
use numfabric_sim::transport::FlowAgent;
use numfabric_sim::SimDuration;
use std::sync::Arc;

/// Weights are clamped into this range to keep STFQ virtual times well
/// conditioned. At equilibrium a flow's weight equals its rate in Gbps, so
/// the range is generous on both sides.
const WEIGHT_MIN: f64 = 1e-4;
/// Upper weight clamp (see [`WEIGHT_MIN`]).
const WEIGHT_MAX: f64 = 1e5;

/// Convert bits/second to the Gbps units the utility functions see.
fn to_gbps(bps: f64) -> f64 {
    bps / 1e9
}

/// The NUMFabric flow agent (sender and receiver logic).
pub struct NumFabricAgent {
    config: NumFabricConfig,
    utility: UtilityRef,
    aggregate: Option<AggregateHandle>,

    // ---- sender state ----
    estimator: SwiftRateEstimator,
    window: Option<SwiftWindow>,
    weight: f64,
    path_price: f64,
    path_len_hint: u32,
    next_seq: u64,
    highest_ack: u64,
    started: bool,
}

impl NumFabricAgent {
    /// An agent with the given configuration and utility function.
    pub fn new(config: NumFabricConfig, utility: impl Utility + 'static) -> Self {
        Self::with_utility_ref(config, Arc::new(utility))
    }

    /// An agent sharing an already-constructed utility handle.
    pub fn with_utility_ref(config: NumFabricConfig, utility: UtilityRef) -> Self {
        let estimator = SwiftRateEstimator::from_config(&config);
        let weight = config.initial_weight;
        Self {
            config,
            utility,
            aggregate: None,
            estimator,
            window: None,
            weight,
            path_price: 0.0,
            path_len_hint: 1,
            next_seq: 0,
            highest_ack: 0,
            started: false,
        }
    }

    /// Mark this agent as one subflow of a multipath aggregate (resource
    /// pooling). The `utility` passed at construction is interpreted as the
    /// utility of the *aggregate* rate.
    pub fn with_aggregate(mut self, handle: AggregateHandle) -> Self {
        self.aggregate = Some(handle);
        self
    }

    /// The flow's current Swift weight (for tests and tracing).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The latest path price learned from ACKs (for tests and tracing).
    pub fn path_price(&self) -> f64 {
        self.path_price
    }

    /// The current Swift rate estimate in bits/s, if initialized.
    pub fn rate_estimate_bps(&self) -> Option<f64> {
        self.estimator.rate_bps()
    }

    /// The rate (in Gbps) at which the marginal utility is evaluated: the
    /// flow's own estimate for single-path flows, the aggregate total for
    /// multipath subflows. `None` until a rate measurement exists — computing
    /// a marginal at a made-up near-zero rate would produce an enormous
    /// residual and poison the prices of links this flow alone traverses.
    fn marginal_rate_gbps(&self) -> Option<f64> {
        match &self.aggregate {
            Some(agg) => {
                let total = agg.total_rate_bps();
                if total > 0.0 {
                    Some(to_gbps(total.max(1e6)))
                } else {
                    None
                }
            }
            None => self.estimator.rate_bps().map(|r| to_gbps(r.max(1e6))),
        }
    }

    fn recompute_weight(&mut self) {
        // Eq. 7: the weight is the rate at which the marginal utility equals
        // the path price. With no price feedback yet the inverse marginal is
        // huge; the clamp keeps STFQ numerics sane (all-new flows then share
        // the bottleneck equally, which is the right startup behaviour).
        let total_weight = self
            .utility
            .inverse_marginal(self.path_price.max(0.0))
            .clamp(WEIGHT_MIN, WEIGHT_MAX);
        self.weight = match &self.aggregate {
            Some(agg) => (total_weight * agg.throughput_fraction()).clamp(WEIGHT_MIN, WEIGHT_MAX),
            None => total_weight,
        };
    }

    fn normalized_residual(&self) -> f64 {
        // Until the flow has a rate measurement it does not know its marginal
        // utility, so it sends a neutral residual (it neither pushes prices up
        // nor down); the xWI min-residual tracking then follows the flows that
        // do have measurements.
        let Some(rate) = self.marginal_rate_gbps() else {
            return 0.0;
        };
        let marginal = self.utility.marginal(rate);
        (marginal - self.path_price) / self.path_len_hint.max(1) as f64
    }

    fn window_bytes(&self) -> u64 {
        let rate = self.estimator.rate_bps().unwrap_or(0.0);
        let Some(w) = &self.window else {
            return self.config.min_window_packets * MTU_BYTES as u64;
        };
        let mut window = w.window_bytes(rate);
        // Saturating utilities (bandwidth functions) impose a demand cap: the
        // flow never benefits from more than `max_useful_rate`, so it should
        // not window itself beyond that even if WFQ would serve it more. For
        // multipath subflows the cap applies to the aggregate, so this
        // subflow's share of the cap is its current throughput fraction.
        if let Some(cap_gbps) = self.utility.max_useful_rate() {
            let share = self
                .aggregate
                .as_ref()
                .map(|a| a.throughput_fraction())
                .unwrap_or(1.0);
            // One BDP at the demand cap (no probing slack: a saturated flow
            // has nothing to gain from pushing past its cap).
            let cap = w
                .bdp_bytes(cap_gbps * 1e9 * share.min(1.0))
                .max(MTU_BYTES as u64);
            window = window.min(cap);
        }
        window
    }

    fn in_flight_bytes(&self) -> u64 {
        self.next_seq.saturating_sub(self.highest_ack)
    }

    fn send_available(&mut self, ctx: &mut AgentCtx<'_>) {
        let window = self.window_bytes();
        let residual = self.normalized_residual();
        let weight = self.weight;
        loop {
            if self.in_flight_bytes() >= window {
                break;
            }
            let payload = match ctx.remaining_bytes() {
                Some(0) => break,
                Some(rem) => rem.min(DEFAULT_PAYLOAD_BYTES as u64) as u32,
                None => DEFAULT_PAYLOAD_BYTES,
            };
            let seq = self.next_seq;
            ctx.send_data(seq, payload, |h| {
                h.virtual_packet_len = (payload + 40) as f64 / weight;
                h.normalized_residual = residual;
            });
            self.next_seq += payload as u64;
        }
    }

    /// (Re)build the Swift window for the flow's current route.
    fn configure_window_for_route(&mut self, ctx: &AgentCtx<'_>) {
        let mut window = SwiftWindow::new(&self.config, ctx.base_rtt(), MTU_BYTES as u64);
        // Path-length-aware dt: the configured slack targets a standing
        // queue at the bottleneck, but every *other* traversed link — both
        // the data path and the ACK return path — can add up to one MTU
        // serialization of head-of-line wait to the RTT. A fixed dt tuned
        // on the paper's 4-link leaf-spine round trips then under-windows
        // flows on deeper fabrics (fat-tree round trips are 12 links) and
        // concedes rate. Grow the slack by one MTU serialization per
        // round-trip link beyond the 4-link baseline.
        let round_trip_links = 2 * ctx.route().len() as u64;
        let per_hop = SimDuration::transmission(MTU_BYTES as u64, ctx.first_hop_capacity_bps());
        window.dt +=
            SimDuration::from_nanos(per_hop.as_nanos() * round_trip_links.saturating_sub(4));
        self.window = Some(window);
        self.path_len_hint = ctx.route().len() as u32;
    }

    fn initial_burst_bytes(&self, ctx: &AgentCtx<'_>) -> u64 {
        match self.config.initial_window_bytes {
            Some(bytes) => bytes,
            None => self.config.initial_burst_packets as u64 * DEFAULT_PAYLOAD_BYTES as u64,
        }
        .min(ctx.remaining_bytes().unwrap_or(u64::MAX))
        .max(DEFAULT_PAYLOAD_BYTES as u64)
    }
}

impl FlowAgent for NumFabricAgent {
    fn on_start(&mut self, ctx: &mut AgentCtx<'_>) {
        self.started = true;
        self.configure_window_for_route(ctx);
        self.recompute_weight();

        // Initial burst (§4.1): enough packets to produce inter-packet time
        // samples at the receiver — or a full BDP for the FCT experiments.
        let mut to_send = self.initial_burst_bytes(ctx);
        let residual = self.normalized_residual();
        let weight = self.weight;
        while to_send > 0 {
            let payload = match ctx.remaining_bytes() {
                Some(0) => break,
                Some(rem) => rem.min(DEFAULT_PAYLOAD_BYTES as u64) as u32,
                None => DEFAULT_PAYLOAD_BYTES,
            };
            let payload = payload.min(to_send.max(1) as u32);
            let seq = self.next_seq;
            ctx.send_data(seq, payload, |h| {
                h.virtual_packet_len = (payload + 40) as f64 / weight;
                h.normalized_residual = residual;
            });
            self.next_seq += payload as u64;
            to_send = to_send.saturating_sub(payload as u64);
        }
    }

    fn on_ack(&mut self, packet: &Packet, ctx: &mut AgentCtx<'_>) {
        let previous_ack = self.highest_ack;
        self.highest_ack = self.highest_ack.max(packet.header.ack_bytes);
        let acked_now = self.highest_ack.saturating_sub(previous_ack);

        // Swift rate estimation from the reflected inter-packet time.
        if let Some(ipt) = packet.header.inter_packet_time {
            let sample_bytes = if acked_now > 0 {
                acked_now
            } else {
                DEFAULT_PAYLOAD_BYTES as u64
            };
            self.estimator.on_sample(sample_bytes, ipt, ctx.now());
            if let Some(agg) = &self.aggregate {
                agg.update_rate(self.estimator.rate_bps().unwrap_or(0.0));
            }
        }

        // xWI weight computation from the reflected path price.
        if packet.header.reflected_path_len > 0 {
            self.path_price = packet.header.reflected_path_price;
            self.path_len_hint = packet.header.reflected_path_len;
        }
        self.recompute_weight();
        self.send_available(ctx);
    }

    // NUMFabric is ACK-clocked end to end: the window recomputation rides
    // on every ACK, so the agent never arms a flow timer (and therefore has
    // nothing for the timer service to cancel at stop/completion). The xWI
    // price update runs switch-side on the periodic link timer instead.
    fn on_timer(&mut self, _tag: u64, _ctx: &mut AgentCtx<'_>) {}

    fn on_reroute(&mut self, path_was_lost: bool, ctx: &mut AgentCtx<'_>) {
        if !self.started {
            return;
        }
        // The base RTT and hop count changed under the flow: retune the
        // Swift window (d0 and the path-length-aware dt) for the new path.
        self.configure_window_for_route(ctx);
        self.recompute_weight();
        if !path_was_lost {
            return;
        }
        // The old path died and took the in-flight window with it. This
        // agent is purely ACK-clocked (see `on_timer`), so with nothing
        // left in flight no ACK will ever arrive to reopen the window —
        // go-back-N from the last cumulative ACK restarts the clock on
        // the new route.
        self.next_seq = self.highest_ack;
        ctx.rewind_sent(self.highest_ack);
        self.send_available(ctx);
    }

    fn name(&self) -> &'static str {
        "numfabric"
    }
}

/// Build a [`Network`] ready for NUMFabric: STFQ queues on every port and an
/// xWI price controller on every link.
pub fn numfabric_network(topo: Topology, config: &NumFabricConfig) -> Network {
    let mut net = Network::new(topo, |_| Box::new(StfqQueue::with_default_buffer()));
    install_numfabric(&mut net, config);
    net
}

/// Install xWI price controllers on every link of an existing network (the
/// queues must already be WFQ/STFQ for Swift's guarantees to hold).
pub fn install_numfabric(net: &mut Network, config: &NumFabricConfig) {
    let cfg = config.clone();
    net.set_all_link_controllers(move |_, capacity_bps| {
        Box::new(XwiPriceController::new(&cfg, capacity_bps))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_num::utility::{AlphaFair, FctUtility, LogUtility};
    use numfabric_num::{FluidNetwork, Oracle};
    use numfabric_sim::topology::{LeafSpineConfig, NodeKind};
    use numfabric_sim::{FlowPhase, SimDuration, SimTime};

    fn small_numfabric_net() -> Network {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        numfabric_network(topo, &NumFabricConfig::default())
    }

    fn add_long_flow(
        net: &mut Network,
        src: usize,
        dst: usize,
        utility: impl Utility + 'static,
    ) -> usize {
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        net.add_flow(
            hosts[src],
            hosts[dst],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(NumFabricAgent::new(NumFabricConfig::default(), utility)),
        )
    }

    #[test]
    fn two_equal_flows_share_a_bottleneck_evenly_and_fully() {
        let mut net = small_numfabric_net();
        // Both flows terminate at host 4: its 10 Gbps NIC is the bottleneck.
        let f0 = add_long_flow(&mut net, 0, 4, LogUtility::new());
        let f1 = add_long_flow(&mut net, 1, 4, LogUtility::new());
        net.run_until(SimTime::from_millis(8));
        let r0 = net.flow_rate_estimate(f0);
        let r1 = net.flow_rate_estimate(f1);
        let total = r0 + r1;
        assert!(total > 8.5e9, "bottleneck underutilized: {total}");
        assert!(total < 10.2e9, "oversubscribed: {total}");
        assert!(
            (r0 - r1).abs() / total < 0.1,
            "proportional fairness should split evenly: {r0} vs {r1}"
        );
    }

    #[test]
    fn weighted_flows_split_in_proportion_to_weights() {
        let mut net = small_numfabric_net();
        let f0 = add_long_flow(&mut net, 0, 4, LogUtility::weighted(3.0));
        let f1 = add_long_flow(&mut net, 1, 4, LogUtility::weighted(1.0));
        net.run_until(SimTime::from_millis(8));
        let r0 = net.flow_rate_estimate(f0);
        let r1 = net.flow_rate_estimate(f1);
        let ratio = r0 / r1;
        assert!(
            (ratio - 3.0).abs() < 0.6,
            "expected a 3:1 split, got {r0:.2e} vs {r1:.2e} (ratio {ratio:.2})"
        );
        assert!(r0 + r1 > 8.5e9);
    }

    #[test]
    fn parking_lot_matches_the_proportional_fair_oracle() {
        // Flow A traverses two bottlenecks (src rack → dst host NIC shared at
        // both ends); flows B and C each share one of them. We build the
        // equivalent fluid instance and compare against the oracle.
        let mut net = small_numfabric_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let cfg = NumFabricConfig::default();
        // A: host0 -> host5, B: host1 -> host5 (shares dst NIC with A),
        // C: host0's rack-mate host2 -> host4... To build a true parking lot
        // we instead share the *source* NIC: A and B share host0's NIC by
        // both originating at host0; C shares A's destination NIC at host5.
        let fa = net.add_flow(
            hosts[0],
            hosts[5],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(NumFabricAgent::new(cfg.clone(), LogUtility::new())),
        );
        let fb = net.add_flow(
            hosts[0],
            hosts[6],
            None,
            SimTime::ZERO,
            1,
            None,
            Box::new(NumFabricAgent::new(cfg.clone(), LogUtility::new())),
        );
        let fc = net.add_flow(
            hosts[1],
            hosts[5],
            None,
            SimTime::ZERO,
            2,
            None,
            Box::new(NumFabricAgent::new(cfg.clone(), LogUtility::new())),
        );
        net.run_until(SimTime::from_millis(10));

        // Fluid model: link0 = host0 NIC (A, B), link1 = host5 NIC (A, C).
        let mut fluid = FluidNetwork::new();
        let l0 = fluid.add_link(10.0);
        let l1 = fluid.add_link(10.0);
        fluid.add_simple_flow(vec![l0, l1], LogUtility::new());
        fluid.add_simple_flow(vec![l0], LogUtility::new());
        fluid.add_simple_flow(vec![l1], LogUtility::new());
        let oracle = Oracle::new().solve(&fluid);
        assert!(oracle.converged);

        let measured = [
            net.flow_rate_estimate(fa) / 1e9,
            net.flow_rate_estimate(fb) / 1e9,
            net.flow_rate_estimate(fc) / 1e9,
        ];
        for (i, (&m, &o)) in measured.iter().zip(oracle.rates.iter()).enumerate() {
            assert!(
                (m - o).abs() / o < 0.15,
                "flow {i}: measured {m:.2} Gbps vs oracle {o:.2} Gbps ({:?} vs {:?})",
                measured,
                oracle.rates
            );
        }
    }

    #[test]
    fn fct_utility_gives_the_small_flow_priority() {
        let mut net = small_numfabric_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let cfg = NumFabricConfig::slowed_down(2.0);
        //

        let small = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(NumFabricAgent::new(cfg.clone(), FctUtility::new(10_000.0))),
        );
        let large = net.add_flow(
            hosts[1],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(NumFabricAgent::new(
                cfg.clone(),
                FctUtility::new(10_000_000.0),
            )),
        );
        net.run_until(SimTime::from_millis(10));
        let rs = net.flow_rate_estimate(small);
        let rl = net.flow_rate_estimate(large);
        assert!(
            rs > 3.0 * rl,
            "the small flow should dominate: small {rs:.2e}, large {rl:.2e}"
        );
        assert!(
            rs + rl > 8e9,
            "bottleneck should stay busy: {:.2e}",
            rs + rl
        );
    }

    #[test]
    fn alpha_two_flows_still_fill_the_link() {
        let mut net = small_numfabric_net();
        let f0 = add_long_flow(&mut net, 0, 4, AlphaFair::new(2.0));
        let f1 = add_long_flow(&mut net, 1, 4, AlphaFair::new(2.0));
        net.run_until(SimTime::from_millis(8));
        let total = net.flow_rate_estimate(f0) + net.flow_rate_estimate(f1);
        assert!(total > 8.5e9, "total = {total:.3e}");
    }

    #[test]
    fn finite_flow_completes_and_reports_fct() {
        let mut net = small_numfabric_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            Some(1_460_000),
            SimTime::ZERO,
            0,
            None,
            Box::new(NumFabricAgent::new(
                NumFabricConfig::default(),
                LogUtility::new(),
            )),
        );
        net.run_until(SimTime::from_millis(20));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
        let fct = net.flow_stats(flow).fct().unwrap();
        // 1.46 MB at 10 Gbps is ~1.2 ms; allow generous startup overhead.
        assert!(fct >= SimDuration::from_micros(1_100), "fct = {fct}");
        assert!(fct < SimDuration::from_millis(4), "fct = {fct}");
    }

    #[test]
    fn queues_stay_small_at_equilibrium() {
        // The paper: "queue occupancies are typically only a few packets at
        // equilibrium". Check the bottleneck queue after convergence.
        let mut net = small_numfabric_net();
        let _f0 = add_long_flow(&mut net, 0, 4, LogUtility::new());
        let _f1 = add_long_flow(&mut net, 1, 4, LogUtility::new());
        net.run_until(SimTime::from_millis(8));
        let topo = net.topology().clone();
        let hosts: Vec<_> = topo.hosts().to_vec();
        // The bottleneck is host4's ingress NIC: the leaf → host4 link.
        let leaf = topo.leaf_of(hosts[4]).unwrap();
        let link = topo.link_between(leaf, hosts[4]).unwrap();
        let stats = net.link_stats(link);
        assert!(
            stats.queue_packets <= 30,
            "expected a small standing queue, got {} packets",
            stats.queue_packets
        );
        // And nothing was dropped anywhere.
        let drops: u64 = (0..net.num_links())
            .map(|l| net.link_stats(l).packets_dropped)
            .sum();
        assert_eq!(drops, 0);
    }

    #[test]
    fn new_flow_arrival_reconverges_quickly() {
        let mut net = small_numfabric_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let cfg = NumFabricConfig::default();
        let f0 = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(NumFabricAgent::new(cfg.clone(), LogUtility::new())),
        );
        // Second flow arrives 3 ms in.
        let f1 = net.add_flow(
            hosts[1],
            hosts[4],
            None,
            SimTime::from_millis(3),
            0,
            None,
            Box::new(NumFabricAgent::new(cfg.clone(), LogUtility::new())),
        );
        net.run_until(SimTime::from_millis(2));
        assert!(
            net.flow_rate_estimate(f0) > 8.5e9,
            "single flow should get the whole NIC"
        );
        // 2 ms after the arrival both flows should have re-converged to ~5 Gbps.
        net.run_until(SimTime::from_millis(6));
        let r0 = net.flow_rate_estimate(f0);
        let r1 = net.flow_rate_estimate(f1);
        assert!((r0 - 5e9).abs() < 1.2e9, "r0 = {r0:.3e}");
        assert!((r1 - 5e9).abs() < 1.2e9, "r1 = {r1:.3e}");
    }

    #[test]
    fn cable_cut_on_the_path_reroutes_and_restarts_the_ack_clock() {
        // Cut both directions of the flow's spine cable mid-run. The whole
        // in-flight window dies with the cable, and NUMFabric has no
        // retransmission timer — without the go-back-N in `on_reroute`
        // the ACK clock would never tick again and the flow would stall
        // at ~0 bps forever (the original recovery-scenario bug).
        let mut net = small_numfabric_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(NumFabricAgent::new(
                NumFabricConfig::default(),
                LogUtility::new(),
            )),
        );
        net.run_until(SimTime::from_millis(2));
        let original = net.flow_spec(flow).route;
        let topo = net.topology().clone();
        let (fwd, rev) = net
            .route(original)
            .links()
            .iter()
            .find_map(|&l| {
                let spec = &topo.links()[l];
                (topo.nodes()[spec.from].kind.is_switch() && topo.nodes()[spec.to].kind.is_switch())
                    .then(|| (l, topo.link_between(spec.to, spec.from).unwrap()))
            })
            .expect("cross-rack route crosses a fabric cable");
        use numfabric_sim::LinkChange;
        net.schedule_link_change(SimTime::from_millis(2), fwd, LinkChange::Down);
        net.schedule_link_change(SimTime::from_millis(2), rev, LinkChange::Down);
        net.run_until(SimTime::from_millis(5));
        let detour = net.flow_spec(flow).route;
        assert_ne!(detour, original, "the flow must move off the dead cable");
        assert!(!net.route(detour).links().contains(&fwd));
        // The clock restarted: the flow is back at (close to) its NIC rate.
        let rate = net.flow_rate_estimate(flow);
        assert!(rate > 8.5e9, "flow stalled after the cut: {rate:.3e} bps");
        let delivered = net.flow_stats(flow).bytes_delivered;
        net.run_until(SimTime::from_millis(6));
        assert!(net.flow_stats(flow).bytes_delivered > delivered);
    }

    #[test]
    fn cross_rack_traffic_uses_the_spine_without_loss() {
        let mut net = small_numfabric_net();
        let f = add_long_flow(&mut net, 0, 7, LogUtility::new());
        net.run_until(SimTime::from_millis(5));
        assert!(net.flow_rate_estimate(f) > 8.5e9);
        let topo = net.topology().clone();
        let spine_carried: u64 = topo
            .links()
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                topo.nodes()[s.from].kind == NodeKind::Spine
                    || topo.nodes()[s.to].kind == NodeKind::Spine
            })
            .map(|(id, _)| net.link_stats(id).packets_transmitted)
            .sum();
        assert!(spine_carried > 1000);
    }
}

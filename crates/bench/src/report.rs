//! Small reporting helpers shared by the figure-regeneration binaries:
//! percentiles, CDFs, size bins, aligned-column table printing, and the
//! structured JSON reports behind `numfabric-run ... --json`.
//!
//! The JSON layer is deliberately minimal and hand-rolled: the offline
//! `serde` shim provides no real serialization (see `crates/compat`), and
//! the reports are flat records of strings, numbers and number arrays — a
//! [`Json`] value tree with a spec-compliant renderer covers everything the
//! `BENCH_*.json` perf-trajectory consumers need.

use crate::fabric::{SteadyStateSummary, TransferSummary};
use numfabric_sim::SimDuration;
use std::fmt::Write;

/// The flow-size bins of Fig. 5, in bandwidth-delay products.
pub const FIG5_BINS: [(f64, f64); 5] = [
    (0.0, 5.0),
    (5.0, 10.0),
    (10.0, 100.0),
    (100.0, 1_000.0),
    (1_000.0, 10_000.0),
];

/// Human-readable labels for [`FIG5_BINS`].
pub const FIG5_BIN_LABELS: [&str; 5] = ["(0-5)", "(5-10)", "(10-100)", "(100-1K)", "(1K-10K)"];

/// The q-quantile (0 ≤ q ≤ 1) of a sample, by nearest-rank interpolation.
/// Returns `None` for an empty sample.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((v.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    Some(v[idx])
}

/// Arithmetic mean; `None` for an empty sample.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Box-plot style summary (25th, 50th, 75th percentiles).
pub fn quartiles(values: &[f64]) -> Option<(f64, f64, f64)> {
    Some((
        percentile(values, 0.25)?,
        percentile(values, 0.50)?,
        percentile(values, 0.75)?,
    ))
}

/// Empirical CDF points `(value, cumulative probability)` at each sample.
pub fn cdf_points(values: &[f64]) -> Vec<(f64, f64)> {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n as f64))
        .collect()
}

/// Print a CDF as rows `value  probability`, downsampled to at most
/// `max_rows` rows.
pub fn print_cdf(label: &str, values: &[f64], unit: &str, max_rows: usize) {
    let points = cdf_points(values);
    if points.is_empty() {
        println!("{label}: no samples");
        return;
    }
    println!("{label} ({} samples):", points.len());
    let step = (points.len() / max_rows.max(1)).max(1);
    for (i, (x, p)) in points.iter().enumerate() {
        if i % step == 0 || i == points.len() - 1 {
            println!("  {x:>12.1} {unit}   P = {p:.3}");
        }
    }
}

/// Convert optional convergence times to milliseconds, dropping events that
/// never converged.
pub fn times_ms(times: &[Option<SimDuration>]) -> Vec<f64> {
    times
        .iter()
        .filter_map(|t| t.map(|d| d.as_secs_f64() * 1e3))
        .collect()
}

/// Which Fig. 5 bin a flow of `size_bdp` bandwidth-delay products falls into.
pub fn fig5_bin(size_bdp: f64) -> Option<usize> {
    FIG5_BINS
        .iter()
        .position(|&(lo, hi)| size_bdp >= lo && size_bdp < hi)
}

/// A streaming quantile sketch with fixed memory and a guaranteed
/// *relative value error* of [`QuantileSketch::RELATIVE_ERROR`] — the
/// bounded-stats backbone of the churn scenario, where collecting a
/// million FCTs into a `Vec` and sorting (as [`percentile`] does) would
/// defeat the whole O(concurrent flows) memory budget.
///
/// The design is the classic geometric-bucket sketch: value `x` falls in
/// bucket `⌈ln x / ln γ⌉` with `γ = (1 + α)/(1 − α)`, and a bucket is
/// summarized by its midpoint-in-ratio `2γ^i/(γ + 1)`, so any estimate `e`
/// of a recorded value `x` satisfies `|e − x| ≤ α·x` for values in
/// `[1e-9, 1e12]` (seconds and slowdowns both live comfortably inside).
/// Values below the tracked range land in a dedicated zero bucket and
/// report as the sketch minimum; values above clamp to the top bucket.
/// The bucket layout is a pure function of the constants, so [`merge`]
/// (binwise sum) is exact: a merged sketch answers every quantile query
/// identically to one sketch that saw all the samples.
///
/// Quantile queries use the same nearest-rank convention as
/// [`percentile`] (`rank = round((n − 1)·q)`), so sketch-vs-exact
/// comparisons differ only by the relative error bound, never by rank
/// arithmetic.
///
/// [`merge`]: QuantileSketch::merge
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Geometric bucket counts, index 0 = bucket of `MIN_TRACKED`.
    counts: Vec<u64>,
    /// Samples below `MIN_TRACKED` (including exact zeros).
    zero: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// The guaranteed relative value error `α` of every quantile estimate.
    pub const RELATIVE_ERROR: f64 = 0.01;
    /// Smallest tracked value; anything below lands in the zero bucket.
    const MIN_TRACKED: f64 = 1e-9;
    /// Largest tracked value; anything above clamps to the top bucket.
    const MAX_TRACKED: f64 = 1e12;

    fn gamma() -> f64 {
        (1.0 + Self::RELATIVE_ERROR) / (1.0 - Self::RELATIVE_ERROR)
    }

    /// Bucket index of `MIN_TRACKED` in the unshifted `⌈ln x / ln γ⌉` map.
    fn first_index() -> i64 {
        (Self::MIN_TRACKED.ln() / Self::gamma().ln()).ceil() as i64
    }

    /// An empty sketch. Allocates the full fixed bucket range up front
    /// (~2.4k buckets at α = 1 %, ≈19 KiB) — the footprint never grows.
    pub fn new() -> Self {
        let last = (Self::MAX_TRACKED.ln() / Self::gamma().ln()).ceil() as i64;
        let buckets = (last - Self::first_index() + 1) as usize;
        Self {
            counts: vec![0; buckets],
            zero: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample. Negative and non-finite values are ignored —
    /// FCTs and slowdowns are nonnegative by construction, and a NaN must
    /// not poison the aggregates.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x < 0.0 {
            return;
        }
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x < Self::MIN_TRACKED {
            self.zero += 1;
        } else {
            let i = (x.ln() / Self::gamma().ln()).ceil() as i64 - Self::first_index();
            let i = (i.max(0) as usize).min(self.counts.len() - 1);
            self.counts[i] += 1;
        }
    }

    /// Fold another sketch into this one. Bucket layouts are identical by
    /// construction, so this is a binwise sum — the merged sketch is
    /// indistinguishable from one that recorded both sample streams.
    pub fn merge(&mut self, other: &QuantileSketch) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The q-quantile estimate (nearest rank, like [`percentile`]);
    /// `None` when the sketch is empty. Estimates are clamped into
    /// `[min, max]`, which tightens the extremes without weakening the
    /// relative-error bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        // The extreme ranks are tracked exactly — answer them exactly.
        if rank == 0 {
            return Some(self.min);
        }
        if rank == self.count - 1 {
            return Some(self.max);
        }
        if rank < self.zero {
            return Some(self.min);
        }
        let gamma = Self::gamma();
        let mut seen = self.zero;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                let idx = (i as i64 + Self::first_index()) as i32;
                let estimate = 2.0 * gamma.powi(idx) / (gamma + 1.0);
                return Some(estimate.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; `None` when empty. Exact (not sketched).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest recorded sample; `None` when empty. Exact.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample; `None` when empty. Exact.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

/// Fixed-size streaming accumulator for one traffic class of a churn run:
/// exact scalar aggregates next to FCT and slowdown sketches. Footprint is
/// O(1) per class no matter how many flows complete.
#[derive(Debug, Clone)]
pub struct ClassStats {
    /// Class name as reported (`"fg"`, `"bg"`, ...).
    pub name: &'static str,
    /// Completed flows attributed to this class.
    pub flows: u64,
    /// Bytes carried by those flows.
    pub bytes: u64,
    /// Flow-completion-time sketch, in seconds.
    pub fct: QuantileSketch,
    /// Slowdown sketch: FCT over the empty-network FCT bound. Can dip
    /// below 1 for tiny flows — the bound charges a full base RTT while
    /// the measured FCT ends at last-byte *delivery*, one way.
    pub slowdown: QuantileSketch,
}

impl ClassStats {
    /// An empty accumulator for class `name`.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            flows: 0,
            bytes: 0,
            fct: QuantileSketch::new(),
            slowdown: QuantileSketch::new(),
        }
    }

    /// Record one completed flow.
    pub fn record(&mut self, size_bytes: u64, fct_seconds: f64, slowdown: f64) {
        self.flows += 1;
        self.bytes += size_bytes;
        self.fct.record(fct_seconds);
        self.slowdown.record(slowdown);
    }
}

/// Everything a churn run reports: offered/completed totals, the flow-slab
/// high-water marks, and the per-class accumulators. Deliberately carries
/// no wall-clock measurement — the report must be a pure function of the
/// configuration so the determinism matrix can compare raw bytes.
#[derive(Debug, Clone)]
pub struct ChurnSummary {
    /// Flows offered by the arrival trace within the horizon.
    pub offered: u64,
    /// Flows that completed (drained flows included).
    pub completed: u64,
    /// Peak number of simultaneously live (non-retired) flows.
    pub peak_concurrent: usize,
    /// Flow slots ever allocated — the slab high-water mark.
    pub flow_slots: usize,
    /// Per-class accumulators, in mix order.
    pub classes: Vec<ClassStats>,
}

impl ChurnSummary {
    /// The sketch of all classes merged — overall FCT/slowdown quantiles.
    pub fn overall(&self) -> (QuantileSketch, QuantileSketch) {
        let mut fct = QuantileSketch::new();
        let mut slowdown = QuantileSketch::new();
        for class in &self.classes {
            fct.merge(&class.fct);
            slowdown.merge(&class.slowdown);
        }
        (fct, slowdown)
    }

    /// Total completed bytes across classes.
    pub fn completed_bytes(&self) -> u64 {
        self.classes.iter().map(|c| c.bytes).sum()
    }
}

/// The structured report of a churn run. Contains only simulation-derived
/// quantities (never wall-clock), so the rendered bytes are bit-identical
/// across every `--partitions × --partition-threads` choice.
pub fn churn_report_json(
    topology: &str,
    protocol: &str,
    load: f64,
    duration_millis: u64,
    seed: u64,
    summary: &ChurnSummary,
) -> Json {
    let (fct, slowdown) = summary.overall();
    let horizon_secs = duration_millis as f64 / 1e3;
    let quant = |s: &QuantileSketch, q: f64| s.quantile(q).map_or(Json::Null, Json::Num);
    let classes = summary
        .classes
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("name", Json::str(c.name)),
                ("flows", Json::Int(c.flows)),
                ("bytes", Json::Int(c.bytes)),
                (
                    "mean_fct_seconds",
                    c.fct.mean().map_or(Json::Null, Json::Num),
                ),
                ("median_fct_seconds", quant(&c.fct, 0.5)),
                ("p99_fct_seconds", quant(&c.fct, 0.99)),
                ("median_slowdown", quant(&c.slowdown, 0.5)),
                ("p99_slowdown", quant(&c.slowdown, 0.99)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("scenario", Json::str("churn")),
        ("topology", Json::str(topology)),
        ("protocol", Json::str(protocol)),
        ("load", Json::Num(load)),
        ("duration_millis", Json::Int(duration_millis)),
        ("seed", Json::Int(seed)),
        ("offered_flows", Json::Int(summary.offered)),
        ("completed_flows", Json::Int(summary.completed)),
        (
            "peak_concurrent_flows",
            Json::Int(summary.peak_concurrent as u64),
        ),
        ("flow_slots", Json::Int(summary.flow_slots as u64)),
        ("median_fct_seconds", quant(&fct, 0.5)),
        ("p99_fct_seconds", quant(&fct, 0.99)),
        ("p999_fct_seconds", quant(&fct, 0.999)),
        ("median_slowdown", quant(&slowdown, 0.5)),
        ("p99_slowdown", quant(&slowdown, 0.99)),
        (
            "goodput_bps",
            Json::Num(summary.completed_bytes() as f64 * 8.0 / horizon_secs),
        ),
        ("classes", Json::Arr(classes)),
    ])
}

/// A JSON value, rendered by [`Json::render`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite numbers render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; never formatted in float notation).
    Int(u64),
    /// A floating-point number; NaN/inf render as `null` per the JSON spec.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array of floats.
    pub fn nums(values: impl IntoIterator<Item = f64>) -> Json {
        Json::Arr(values.into_iter().map(Json::Num).collect())
    }

    /// Render to a compact, spec-compliant JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` is the shortest round-trip representation and
                    // always includes a `.` or exponent — valid JSON.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str((*k).to_string()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// A parsed JSON value — the read-side twin of [`Json`], with owned object
/// keys. Backs `numfabric-run bench --compare`, which must read a committed
/// `BENCH_<rev>.json` back in; the offline `serde` shim deserializes
/// nothing, so parsing is hand-rolled like rendering. Integers and floats
/// both parse to `f64` (the perf documents hold nothing above 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedJson {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<ParsedJson>),
    /// An object, in document order.
    Obj(Vec<(String, ParsedJson)>),
}

impl ParsedJson {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<ParsedJson, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&ParsedJson> {
        match self {
            ParsedJson::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParsedJson::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParsedJson::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[ParsedJson]> {
        match self {
            ParsedJson::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<ParsedJson, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(ParsedJson::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(ParsedJson::Obj(fields));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(ParsedJson::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(ParsedJson::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }
        Some(b'"') => Ok(ParsedJson::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", ParsedJson::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", ParsedJson::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", ParsedJson::Null),
        Some(_) => {
            let start = *pos;
            if bytes.get(*pos) == Some(&b'-') {
                *pos += 1;
            }
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(ParsedJson::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: ParsedJson,
) -> Result<ParsedJson, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chars = std::str::from_utf8(&bytes[*pos..])
        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?
        .char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + h.to_digit(16).ok_or("invalid \\u escape")?;
                    }
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                other => return Err(format!("invalid escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

/// The structured report of a finite-transfer scenario run (incast,
/// shuffle): scenario identity, per-flow FCTs and the aggregate summary.
pub fn transfer_report_json(
    scenario: &str,
    topology: &str,
    protocol: &str,
    size_bytes: u64,
    seed: u64,
    summary: &TransferSummary,
) -> Json {
    Json::Obj(vec![
        ("scenario", Json::str(scenario)),
        ("topology", Json::str(topology)),
        ("protocol", Json::str(protocol)),
        ("size_bytes", Json::Int(size_bytes)),
        ("seed", Json::Int(seed)),
        ("flows", Json::Int(summary.flows as u64)),
        ("completed", Json::Int(summary.completed as u64)),
        ("fct_seconds", Json::nums(summary.fcts.iter().copied())),
        (
            "median_fct_seconds",
            percentile(&summary.fcts, 0.5).map_or(Json::Null, Json::Num),
        ),
        (
            "p99_fct_seconds",
            percentile(&summary.fcts, 0.99).map_or(Json::Null, Json::Num),
        ),
        (
            "makespan_seconds",
            summary
                .makespan
                .map_or(Json::Null, |m| Json::Num(m.as_secs_f64())),
        ),
        ("goodput_bps", Json::Num(summary.aggregate_goodput_bps())),
    ])
}

/// The structured report of a steady-state scenario run (stride): measured
/// per-flow rates next to the fluid NUM oracle's allocation.
pub fn steady_state_report_json(
    scenario: &str,
    topology: &str,
    protocol: &str,
    seed: u64,
    run_millis: u64,
    summary: &SteadyStateSummary,
) -> Json {
    Json::Obj(vec![
        ("scenario", Json::str(scenario)),
        ("topology", Json::str(topology)),
        ("protocol", Json::str(protocol)),
        ("seed", Json::Int(seed)),
        ("run_millis", Json::Int(run_millis)),
        ("flows", Json::Int(summary.rates_bps.len() as u64)),
        ("rates_bps", Json::nums(summary.rates_bps.iter().copied())),
        ("oracle_bps", Json::nums(summary.oracle_bps.iter().copied())),
        (
            "fraction_within_10pct",
            Json::Num(summary.fraction_within(0.10)),
        ),
        ("throughput_ratio", Json::Num(summary.throughput_ratio())),
    ])
}

/// Print a table with a header row and aligned columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let formatted: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", formatted.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_the_renderer() {
        // Every shape the renderer can emit must come back structurally
        // intact (Int and Num both surface as ParsedJson::Num).
        let doc = Json::Obj(vec![
            ("rev", Json::str("abc\"\\\n")),
            ("count", Json::Int(42)),
            ("rate", Json::Num(1234.5)),
            ("nan", Json::Num(f64::NAN)),
            ("ok", Json::Bool(true)),
            ("items", Json::Arr(vec![Json::Num(-1.5e3), Json::Null])),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let parsed = ParsedJson::parse(&doc.render()).expect("rendered JSON must parse");
        assert_eq!(
            parsed.get("rev").and_then(ParsedJson::as_str),
            Some("abc\"\\\n")
        );
        assert_eq!(parsed.get("count").and_then(ParsedJson::as_f64), Some(42.0));
        assert_eq!(
            parsed.get("rate").and_then(ParsedJson::as_f64),
            Some(1234.5)
        );
        assert_eq!(parsed.get("nan"), Some(&ParsedJson::Null));
        assert_eq!(parsed.get("ok"), Some(&ParsedJson::Bool(true)));
        let items = parsed.get("items").and_then(ParsedJson::as_arr).unwrap();
        assert_eq!(items, &[ParsedJson::Num(-1500.0), ParsedJson::Null]);
        assert_eq!(parsed.get("empty_obj"), Some(&ParsedJson::Obj(vec![])));
        assert_eq!(parsed.get("empty_arr"), Some(&ParsedJson::Arr(vec![])));
        assert_eq!(parsed.get("missing"), None);
    }

    #[test]
    fn parser_accepts_pretty_printed_documents() {
        let text = "\n{\n  \"a\": [1, 2.5e1,\t-3],\n  \"b\": {\"u\": \"\\u0041\"}\n}\n";
        let parsed = ParsedJson::parse(text).unwrap();
        let a = parsed.get("a").and_then(ParsedJson::as_arr).unwrap();
        assert_eq!(
            a,
            &[
                ParsedJson::Num(1.0),
                ParsedJson::Num(25.0),
                ParsedJson::Num(-3.0)
            ]
        );
        assert_eq!(
            parsed
                .get("b")
                .and_then(|b| b.get("u"))
                .and_then(ParsedJson::as_str),
            Some("A")
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "{} trailing",
            "12..3",
        ] {
            assert!(
                ParsedJson::parse(bad).is_err(),
                "accepted malformed {bad:?}"
            );
        }
    }

    #[test]
    fn percentile_and_mean_basics() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(100.0));
        let med = percentile(&v, 0.5).unwrap();
        assert!((med - 50.0).abs() <= 1.0);
        assert_eq!(mean(&v), Some(50.5));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn quartiles_are_ordered() {
        let v: Vec<f64> = (0..1000).map(|i| (i as f64).sin().abs() * 10.0).collect();
        let (q1, q2, q3) = quartiles(&v).unwrap();
        assert!(q1 <= q2 && q2 <= q3);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let points = cdf_points(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(points.len(), 4);
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in points.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn fig5_binning_matches_paper_bins() {
        assert_eq!(fig5_bin(0.5), Some(0));
        assert_eq!(fig5_bin(7.0), Some(1));
        assert_eq!(fig5_bin(50.0), Some(2));
        assert_eq!(fig5_bin(500.0), Some(3));
        assert_eq!(fig5_bin(5_000.0), Some(4));
        assert_eq!(fig5_bin(50_000.0), None);
    }

    #[test]
    fn json_renders_scalars_arrays_and_escapes() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(42).render(), "42");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(1.0).render(), "1.0");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            r#""a\"b\\c\nd\u0001""#
        );
        assert_eq!(Json::nums([1.5, 2.0]).render(), "[1.5,2.0]");
        let obj = Json::Obj(vec![("k", Json::Int(1)), ("s", Json::str("v"))]);
        assert_eq!(obj.render(), r#"{"k":1,"s":"v"}"#);
    }

    #[test]
    fn transfer_report_has_the_contract_fields() {
        let summary = TransferSummary {
            flows: 4,
            completed: 3,
            fcts: vec![0.001, 0.002, 0.004],
            completed_bytes: 300_000,
            makespan: Some(SimDuration::from_millis(4)),
        };
        let json =
            transfer_report_json("incast", "fat-tree k=4", "numfabric", 100_000, 7, &summary)
                .render();
        for needle in [
            r#""scenario":"incast""#,
            r#""topology":"fat-tree k=4""#,
            r#""protocol":"numfabric""#,
            r#""flows":4"#,
            r#""completed":3"#,
            r#""fct_seconds":[0.001,0.002,0.004]"#,
            r#""median_fct_seconds":0.002"#,
            r#""makespan_seconds":0.004"#,
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn steady_state_report_has_the_contract_fields() {
        let summary = crate::fabric::SteadyStateSummary {
            rates_bps: vec![5e9, 4.8e9],
            oracle_bps: vec![5e9, 5e9],
        };
        let json =
            steady_state_report_json("stride", "leaf-spine", "dctcp", 3, 8, &summary).render();
        for needle in [
            r#""scenario":"stride""#,
            r#""run_millis":8"#,
            r#""rates_bps":[5000000000.0,4800000000.0]"#,
            r#""fraction_within_10pct":1.0"#,
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn empty_transfer_report_uses_nulls_not_nans() {
        let summary = TransferSummary {
            flows: 2,
            completed: 0,
            fcts: Vec::new(),
            completed_bytes: 0,
            makespan: None,
        };
        let json = transfer_report_json("shuffle", "t", "p", 1, 1, &summary).render();
        assert!(json.contains(r#""median_fct_seconds":null"#), "{json}");
        assert!(json.contains(r#""makespan_seconds":null"#), "{json}");
        assert!(!json.contains("NaN"), "{json}");
    }

    #[test]
    fn sketch_tracks_quantiles_within_the_documented_bound() {
        let mut sketch = QuantileSketch::new();
        let values: Vec<f64> = (1..=10_000).map(|i| i as f64 * 1e-4).collect();
        for &v in &values {
            sketch.record(v);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = percentile(&values, q).unwrap();
            let est = sketch.quantile(q).unwrap();
            assert!(
                (est - exact).abs() <= QuantileSketch::RELATIVE_ERROR * exact + 1e-12,
                "q={q}: est={est}, exact={exact}"
            );
        }
        assert_eq!(sketch.count(), 10_000);
        assert_eq!(sketch.min(), Some(1e-4));
        assert_eq!(sketch.max(), Some(1.0));
        assert!((sketch.mean().unwrap() - 0.50005).abs() < 1e-9);
    }

    #[test]
    fn merged_sketch_answers_like_a_single_sketch() {
        let mut single = QuantileSketch::new();
        let mut left = QuantileSketch::new();
        let mut right = QuantileSketch::new();
        for i in 0..5_000 {
            let v = (i as f64 * 0.7129).sin().abs() * 100.0 + 1e-3;
            single.record(v);
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), single.count());
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(left.quantile(q), single.quantile(q), "q={q}");
        }
    }

    #[test]
    fn sketch_handles_empty_zero_and_junk_inputs() {
        let mut sketch = QuantileSketch::new();
        assert_eq!(sketch.quantile(0.5), None);
        assert_eq!(sketch.mean(), None);
        sketch.record(f64::NAN);
        sketch.record(f64::INFINITY);
        sketch.record(-1.0);
        assert_eq!(sketch.count(), 0, "junk must be ignored");
        sketch.record(0.0);
        sketch.record(1e-15);
        sketch.record(2.0);
        assert_eq!(sketch.count(), 3);
        // Ranks 0 and 1 land in the zero bucket and report the exact min.
        assert_eq!(sketch.quantile(0.0), Some(0.0));
        assert_eq!(sketch.quantile(1.0), Some(2.0));
    }

    #[test]
    fn churn_report_has_the_contract_fields_and_no_wall_clock() {
        let mut fg = ClassStats::new("fg");
        fg.record(10_000, 0.001, 1.5);
        fg.record(20_000, 0.002, 2.0);
        let mut bg = ClassStats::new("bg");
        bg.record(1_000_000, 0.1, 4.0);
        let summary = ChurnSummary {
            offered: 4,
            completed: 3,
            peak_concurrent: 2,
            flow_slots: 2,
            classes: vec![fg, bg],
        };
        let json = churn_report_json("fat-tree k=8", "numfabric", 0.6, 200, 9, &summary).render();
        for needle in [
            r#""scenario":"churn""#,
            r#""load":0.6"#,
            r#""offered_flows":4"#,
            r#""completed_flows":3"#,
            r#""peak_concurrent_flows":2"#,
            r#""flow_slots":2"#,
            r#""median_fct_seconds""#,
            r#""p99_slowdown""#,
            r#""name":"fg""#,
            r#""name":"bg""#,
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        for forbidden in ["wall", "elapsed", "walltime"] {
            assert!(!json.contains(forbidden), "wall-clock leaked into {json}");
        }
        // The report parses back with the shared parser.
        assert!(ParsedJson::parse(&json).is_ok());
    }

    #[test]
    fn times_ms_drops_unconverged_events() {
        let times = vec![
            Some(SimDuration::from_micros(500)),
            None,
            Some(SimDuration::from_millis(2)),
        ];
        let ms = times_ms(&times);
        assert_eq!(ms.len(), 2);
        assert!((ms[0] - 0.5).abs() < 1e-9);
        assert!((ms[1] - 2.0).abs() < 1e-9);
    }
}

//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * β price averaging on vs off (stability under noise),
//! * the under-utilization gain η,
//! * STFQ (WFQ) vs a plain FIFO under NUMFabric's weights — the scheduler is
//!   load-bearing for Swift's weighted max-min guarantee,
//! * the Swift initial burst size.
//!
//! Each case runs a short two-flow packet simulation; the correctness-side
//! assertions (fairness, utilization) live in the integration tests, while
//! Criterion keeps the relative costs of the variants visible over time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numfabric_core::protocol::install_numfabric;
use numfabric_core::{NumFabricAgent, NumFabricConfig};
use numfabric_num::utility::LogUtility;
use numfabric_sim::queue::{DropTailFifo, StfqQueue};
use numfabric_sim::topology::{LeafSpineConfig, Topology};
use numfabric_sim::{Network, SimTime};
use std::hint::black_box;

fn run_two_flow(config: &NumFabricConfig, use_stfq: bool) -> (f64, f64) {
    let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
    let mut net = if use_stfq {
        Network::new(topo, |_| Box::new(StfqQueue::with_default_buffer()))
    } else {
        Network::new(topo, |_| Box::new(DropTailFifo::with_default_buffer()))
    };
    install_numfabric(&mut net, config);
    let hosts: Vec<_> = net.topology().hosts().to_vec();
    let f0 = net.add_flow(
        hosts[0],
        hosts[4],
        None,
        SimTime::ZERO,
        0,
        None,
        Box::new(NumFabricAgent::new(
            config.clone(),
            LogUtility::weighted(3.0),
        )),
    );
    let f1 = net.add_flow(
        hosts[1],
        hosts[4],
        None,
        SimTime::ZERO,
        0,
        None,
        Box::new(NumFabricAgent::new(config.clone(), LogUtility::new())),
    );
    net.run_until(SimTime::from_millis(3));
    (net.flow_rate_estimate(f0), net.flow_rate_estimate(f1))
}

fn bench_beta(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_beta_averaging");
    group.sample_size(10);
    for &beta in &[0.0, 0.5, 0.9] {
        group.bench_with_input(BenchmarkId::from_parameter(beta), &beta, |b, &beta| {
            let cfg = NumFabricConfig::default().with_beta(beta);
            b.iter(|| black_box(run_two_flow(&cfg, true)))
        });
    }
    group.finish();
}

fn bench_eta(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_eta");
    group.sample_size(10);
    for &eta in &[0.5, 5.0, 20.0] {
        group.bench_with_input(BenchmarkId::from_parameter(eta), &eta, |b, &eta| {
            let cfg = NumFabricConfig::default().with_eta(eta);
            b.iter(|| black_box(run_two_flow(&cfg, true)))
        });
    }
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scheduler");
    group.sample_size(10);
    group.bench_function("stfq", |b| {
        let cfg = NumFabricConfig::default();
        b.iter(|| black_box(run_two_flow(&cfg, true)))
    });
    group.bench_function("fifo", |b| {
        let cfg = NumFabricConfig::default();
        b.iter(|| black_box(run_two_flow(&cfg, false)))
    });
    group.finish();
}

fn bench_initial_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_initial_burst");
    group.sample_size(10);
    for &burst in &[1usize, 3, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(burst), &burst, |b, &burst| {
            let cfg = NumFabricConfig {
                initial_burst_packets: burst,
                ..NumFabricConfig::default()
            };
            b.iter(|| black_box(run_two_flow(&cfg, true)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_beta,
    bench_eta,
    bench_scheduler,
    bench_initial_burst
);
criterion_main!(benches);

//! Bandwidth functions in the style of Google BwE (§2, Figure 2 of the paper).
//!
//! A bandwidth function `B(f)` maps a dimensionless *fair share* `f` to the
//! bandwidth a flow should receive. Allocation on a link of capacity `C`
//! picks the largest common fair share `f*` such that `Σ_i B_i(f*) ≤ C`
//! (water-filling); across a network the fair shares are max-min over the
//! flows (see BwE, \[35\] in the paper).
//!
//! This module provides piecewise-linear, non-decreasing bandwidth functions,
//! their (pseudo-)inverse `F(x)` (fair share as a function of bandwidth), the
//! single-link water-filling allocation, and the network-wide max-min
//! fair-share allocation used to validate the NUMFabric experiments of
//! Figures 9 and 10.

use crate::EPS;
use serde::{Deserialize, Serialize};

/// Error building or evaluating a bandwidth function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BandwidthFunctionError {
    /// Fewer than two control points were supplied.
    TooFewPoints,
    /// Control points are not sorted by strictly increasing fair share.
    UnsortedFairShare,
    /// Bandwidth values decrease somewhere (the function must be non-decreasing).
    DecreasingBandwidth,
    /// A coordinate was negative, NaN or infinite.
    InvalidCoordinate,
}

impl std::fmt::Display for BandwidthFunctionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewPoints => write!(f, "a bandwidth function needs at least two points"),
            Self::UnsortedFairShare => {
                write!(f, "fair-share coordinates must be strictly increasing")
            }
            Self::DecreasingBandwidth => {
                write!(f, "bandwidth must be non-decreasing in fair share")
            }
            Self::InvalidCoordinate => write!(f, "coordinates must be finite and non-negative"),
        }
    }
}

impl std::error::Error for BandwidthFunctionError {}

/// A piecewise-linear, non-decreasing bandwidth function `B(f)`.
///
/// Beyond the last control point the function is extended as a constant
/// (the flow never wants more than its final bandwidth), matching BwE
/// semantics where bandwidth functions saturate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthFunction {
    /// Control points as (fair_share, bandwidth), strictly increasing in fair
    /// share and non-decreasing in bandwidth.
    points: Vec<(f64, f64)>,
}

impl BandwidthFunction {
    /// Build a bandwidth function from `(fair_share, bandwidth)` control points.
    ///
    /// The points must be strictly increasing in fair share, non-decreasing in
    /// bandwidth, and all coordinates must be finite and non-negative. If the
    /// first point is not at fair share 0 an implicit `(0, first_bandwidth)`
    /// anchor is *not* added — supply it explicitly for clarity.
    pub fn from_points(points: &[(f64, f64)]) -> Result<Self, BandwidthFunctionError> {
        if points.len() < 2 {
            return Err(BandwidthFunctionError::TooFewPoints);
        }
        for &(f, b) in points {
            if !f.is_finite() || !b.is_finite() || f < 0.0 || b < 0.0 {
                return Err(BandwidthFunctionError::InvalidCoordinate);
            }
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(BandwidthFunctionError::UnsortedFairShare);
            }
            if w[1].1 < w[0].1 {
                return Err(BandwidthFunctionError::DecreasingBandwidth);
            }
        }
        Ok(Self {
            points: points.to_vec(),
        })
    }

    /// The bandwidth function of **Flow 1** in Figure 2 of the paper:
    /// strict priority for the first 10 Gbps (fair share 0→2), then growth at
    /// half the slope of flow 2 up to 15 Gbps (fair share 2→4.5... the paper
    /// shows it reaching 15 Gbps at the 25 Gbps operating point), saturating
    /// at 15 Gbps. Units are Gbps.
    pub fn paper_flow1() -> Self {
        Self::from_points(&[(0.0, 0.0), (2.0, 10.0), (4.5, 15.0), (10.0, 15.0)])
            .expect("static points are valid")
    }

    /// The bandwidth function of **Flow 2** in Figure 2 of the paper:
    /// nothing until fair share 2, then growth at twice flow 1's slope until
    /// 10 Gbps at fair share 2.5, saturating at 10 Gbps. Units are Gbps.
    pub fn paper_flow2() -> Self {
        Self::from_points(&[(0.0, 0.0), (2.0, 0.0), (2.5, 10.0), (10.0, 10.0)])
            .expect("static points are valid")
    }

    /// A simple linear bandwidth function `B(f) = slope · f`, capped at `max`.
    ///
    /// # Panics
    /// Panics if `slope <= 0` or `max <= 0`.
    pub fn linear(slope: f64, max: f64) -> Self {
        assert!(slope > 0.0 && max > 0.0, "slope and max must be positive");
        Self::from_points(&[(0.0, 0.0), (max / slope, max), (max / slope * 2.0, max)])
            .expect("constructed points are valid")
    }

    /// The control points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Bandwidth `B(f)` at fair share `f` (clamped below at the first point
    /// and extended as a constant beyond the last point).
    pub fn bandwidth(&self, f: f64) -> f64 {
        let pts = &self.points;
        if f <= pts[0].0 {
            return pts[0].1;
        }
        if f >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Linear interpolation in the containing segment.
        let idx = pts.partition_point(|&(pf, _)| pf <= f);
        let (f0, b0) = pts[idx - 1];
        let (f1, b1) = pts[idx];
        b0 + (b1 - b0) * (f - f0) / (f1 - f0)
    }

    /// Fair share `F(x) = B⁻¹(x)` at bandwidth `x`.
    ///
    /// Where `B` is flat the inverse is set-valued; this returns the *smallest*
    /// fair share achieving bandwidth `x` (the convention that makes
    /// `U'(x) = F(x)^{-α}` well defined and non-increasing). Bandwidth above
    /// the function's maximum maps to the largest fair-share coordinate.
    pub fn fair_share(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].1 {
            return pts[0].0;
        }
        let last = pts[pts.len() - 1];
        if x >= last.1 {
            // Smallest fair share reaching the max bandwidth.
            let first_at_max = pts
                .iter()
                .find(|&&(_, b)| (b - last.1).abs() < EPS)
                .copied()
                .unwrap_or(last);
            return first_at_max.0;
        }
        let idx = pts.partition_point(|&(_, pb)| pb < x);
        let (f0, b0) = pts[idx - 1];
        let (f1, b1) = pts[idx];
        if (b1 - b0).abs() < EPS {
            // Flat segment: smallest fair share with bandwidth >= x is f1.
            f1
        } else {
            f0 + (f1 - f0) * (x - b0) / (b1 - b0)
        }
    }

    /// The saturation bandwidth (value at the last control point).
    pub fn max_bandwidth(&self) -> f64 {
        self.points[self.points.len() - 1].1
    }

    /// The largest fair-share coordinate among the control points.
    pub fn max_fair_share(&self) -> f64 {
        self.points[self.points.len() - 1].0
    }
}

/// Single-link water-filling allocation (§2): find the largest fair share
/// `f*` such that `Σ_i B_i(f*) ≤ capacity` and allocate `B_i(f*)` to each
/// flow. Returns the per-flow allocation and the achieved fair share.
///
/// If even `f* = +∞` does not fill the link (all functions saturate below
/// capacity), every flow gets its maximum bandwidth.
pub fn single_link_allocation(functions: &[BandwidthFunction], capacity: f64) -> (Vec<f64>, f64) {
    assert!(capacity >= 0.0, "capacity must be non-negative");
    if functions.is_empty() {
        return (Vec::new(), 0.0);
    }
    let total_at = |f: f64| functions.iter().map(|b| b.bandwidth(f)).sum::<f64>();
    let f_max = functions
        .iter()
        .map(|b| b.max_fair_share())
        .fold(0.0_f64, f64::max);
    if total_at(f_max) <= capacity + EPS {
        let alloc = functions.iter().map(|b| b.max_bandwidth()).collect();
        return (alloc, f_max);
    }
    // Bisection on the fair share; total_at is non-decreasing.
    let (mut lo, mut hi) = (0.0_f64, f_max);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if total_at(mid) <= capacity {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let f_star = lo;
    (
        functions.iter().map(|b| b.bandwidth(f_star)).collect(),
        f_star,
    )
}

/// Network-wide bandwidth-function allocation: max-min over fair shares.
///
/// `paths[i]` lists the links used by flow `i`; `capacities[l]` is link `l`'s
/// capacity. The allocation raises every flow's fair share together, freezing
/// flows at links that saturate (progressive filling), which generalizes the
/// single-link water-filling procedure the same way BwE does.
///
/// Returns per-flow bandwidth allocations.
///
/// # Panics
/// Panics if a path references a link index out of range.
pub fn network_allocation(
    functions: &[BandwidthFunction],
    paths: &[Vec<usize>],
    capacities: &[f64],
) -> Vec<f64> {
    assert_eq!(
        functions.len(),
        paths.len(),
        "one path per bandwidth function"
    );
    let n = functions.len();
    let m = capacities.len();
    for path in paths {
        for &l in path {
            assert!(l < m, "link index {l} out of range ({m} links)");
        }
    }
    let mut frozen = vec![false; n];
    let mut alloc = vec![0.0_f64; n];
    let mut remaining: Vec<f64> = capacities.to_vec();
    // Round workspaces, hoisted so the filling loop allocates nothing per
    // round (the inner vectors keep their capacity across `clear`).
    let mut link_flows: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut to_freeze = vec![false; n];

    // Progressive filling over fair shares: in each round, find the smallest
    // fair share at which some link saturates considering only unfrozen flows,
    // freeze the flows crossing saturated links at that fair share, repeat.
    for _ in 0..n {
        if frozen.iter().all(|&f| f) {
            break;
        }
        // For each link, the unfrozen flows crossing it.
        for lf in &mut link_flows {
            lf.clear();
        }
        for (i, path) in paths.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            for &l in path {
                link_flows[l].push(i);
            }
        }
        let f_cap = functions
            .iter()
            .map(|b| b.max_fair_share())
            .fold(0.0_f64, f64::max);

        // For each link with unfrozen flows, the fair share at which it saturates.
        let mut bottleneck: Option<(f64, usize)> = None;
        for l in 0..m {
            if link_flows[l].is_empty() {
                continue;
            }
            let total_at = |f: f64| -> f64 {
                link_flows[l]
                    .iter()
                    .map(|&i| functions[i].bandwidth(f))
                    .sum()
            };
            let sat_share = if total_at(f_cap) <= remaining[l] + EPS {
                f64::INFINITY
            } else {
                let (mut lo, mut hi) = (0.0_f64, f_cap);
                for _ in 0..200 {
                    let mid = 0.5 * (lo + hi);
                    if total_at(mid) <= remaining[l] {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                lo
            };
            match bottleneck {
                Some((best, _)) if sat_share >= best => {}
                _ => bottleneck = Some((sat_share, l)),
            }
        }

        let Some((f_star, _)) = bottleneck else { break };

        if f_star.is_infinite() {
            // No link ever saturates: every unfrozen flow gets its maximum.
            for i in 0..n {
                if !frozen[i] {
                    alloc[i] = functions[i].max_bandwidth();
                    frozen[i] = true;
                }
            }
            break;
        }

        // Freeze flows that cross any link saturated at f_star.
        to_freeze.iter_mut().for_each(|t| *t = false);
        for l in 0..m {
            if link_flows[l].is_empty() {
                continue;
            }
            let total: f64 = link_flows[l]
                .iter()
                .map(|&i| functions[i].bandwidth(f_star))
                .sum();
            if total >= remaining[l] - 1e-6 * remaining[l].max(1.0) {
                for &i in &link_flows[l] {
                    to_freeze[i] = true;
                }
            }
        }
        // Guard against numerical stalls: if nothing saturated, freeze everything
        // at f_star (they have all reached their saturation bandwidth anyway).
        if !to_freeze.iter().any(|&t| t) {
            for i in 0..n {
                if !frozen[i] {
                    to_freeze[i] = true;
                }
            }
        }
        for i in 0..n {
            if to_freeze[i] && !frozen[i] {
                alloc[i] = functions[i].bandwidth(f_star);
                frozen[i] = true;
                for &l in &paths[i] {
                    remaining[l] = (remaining[l] - alloc[i]).max(0.0);
                }
            }
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn rejects_bad_point_sets() {
        assert_eq!(
            BandwidthFunction::from_points(&[(0.0, 0.0)]).unwrap_err(),
            BandwidthFunctionError::TooFewPoints
        );
        assert_eq!(
            BandwidthFunction::from_points(&[(0.0, 0.0), (0.0, 1.0)]).unwrap_err(),
            BandwidthFunctionError::UnsortedFairShare
        );
        assert_eq!(
            BandwidthFunction::from_points(&[(0.0, 5.0), (1.0, 1.0)]).unwrap_err(),
            BandwidthFunctionError::DecreasingBandwidth
        );
        assert_eq!(
            BandwidthFunction::from_points(&[(0.0, -1.0), (1.0, 1.0)]).unwrap_err(),
            BandwidthFunctionError::InvalidCoordinate
        );
    }

    #[test]
    fn evaluates_paper_flow1() {
        let b = BandwidthFunction::paper_flow1();
        assert!(close(b.bandwidth(0.0), 0.0, 1e-12));
        assert!(close(b.bandwidth(1.0), 5.0, 1e-12));
        assert!(close(b.bandwidth(2.0), 10.0, 1e-12));
        assert!(close(b.bandwidth(2.5), 11.0, 1e-12));
        assert!(close(b.bandwidth(4.5), 15.0, 1e-12));
        assert!(close(b.bandwidth(100.0), 15.0, 1e-12));
    }

    #[test]
    fn inverse_on_flat_segments_returns_smallest_fair_share() {
        let b = BandwidthFunction::paper_flow2();
        // Flow 2 is flat at 0 until fair share 2; the smallest fair share with
        // bandwidth >= tiny positive amount is just above 2.
        assert!(b.fair_share(0.0) <= 2.0);
        assert!(close(b.fair_share(10.0), 2.5, 1e-9));
        assert!(close(b.fair_share(5.0), 2.25, 1e-9));
    }

    #[test]
    fn paper_figure2_allocation_at_10gbps() {
        // With a 10 Gbps link, flow 1 gets everything (strict priority band).
        let fs = [
            BandwidthFunction::paper_flow1(),
            BandwidthFunction::paper_flow2(),
        ];
        let (alloc, f) = single_link_allocation(&fs, 10.0);
        assert!(close(alloc[0], 10.0, 1e-6), "{alloc:?}");
        assert!(close(alloc[1], 0.0, 1e-6), "{alloc:?}");
        assert!(f <= 2.0 + 1e-6);
    }

    #[test]
    fn paper_figure2_allocation_at_25gbps() {
        // With 25 Gbps, the paper's expected split is 15 / 10 at fair share 2.5.
        let fs = [
            BandwidthFunction::paper_flow1(),
            BandwidthFunction::paper_flow2(),
        ];
        let (alloc, f) = single_link_allocation(&fs, 25.0);
        assert!(close(alloc[0], 15.0, 1e-3), "{alloc:?}");
        assert!(close(alloc[1], 10.0, 1e-3), "{alloc:?}");
        assert!(f >= 2.5 - 1e-3);
    }

    #[test]
    fn single_link_under_subscription_gives_everyone_max() {
        let fs = [
            BandwidthFunction::paper_flow1(),
            BandwidthFunction::paper_flow2(),
        ];
        let (alloc, _) = single_link_allocation(&fs, 100.0);
        assert!(close(alloc[0], 15.0, 1e-9));
        assert!(close(alloc[1], 10.0, 1e-9));
    }

    #[test]
    fn network_allocation_matches_single_link_when_one_link() {
        let fs = vec![
            BandwidthFunction::paper_flow1(),
            BandwidthFunction::paper_flow2(),
        ];
        let paths = vec![vec![0], vec![0]];
        for cap in [5.0, 10.0, 17.0, 25.0, 35.0] {
            let net = network_allocation(&fs, &paths, &[cap]);
            let (single, _) = single_link_allocation(&fs, cap);
            for i in 0..2 {
                assert!(
                    close(net[i], single[i], 0.05),
                    "cap={cap}: {net:?} vs {single:?}"
                );
            }
        }
    }

    #[test]
    fn network_allocation_figure10_topology() {
        // Figure 10: flow 1 uses links {top(5G), middle(X)}, flow 2 uses
        // {bottom(3G), middle(X)} — modelled here as multipath aggregates in
        // the paper, but the per-link bandwidth-function max-min with the
        // *aggregate* functions on the shared link captures the expected
        // totals: X=5 → (10, 3) is not reachable through a single shared link
        // (flow 1's private 5G link caps it), so we only check feasibility
        // and priority ordering.
        let fs = vec![
            BandwidthFunction::paper_flow1(),
            BandwidthFunction::paper_flow2(),
        ];
        let paths = vec![vec![0, 1], vec![2, 1]];
        let alloc = network_allocation(&fs, &paths, &[5.0, 5.0, 3.0]);
        assert!(alloc[0] <= 5.0 + 1e-6);
        assert!(alloc[1] <= 3.0 + 1e-6);
        assert!(alloc[0] + alloc[1] <= 5.0 + 3.0 + 1e-6);
        // Flow 1 has strict priority in its band, so it should hit its 5G cap.
        assert!(alloc[0] >= 5.0 - 1e-3, "{alloc:?}");
    }

    #[test]
    fn linear_bandwidth_function_shape() {
        let b = BandwidthFunction::linear(2.0, 10.0);
        assert!(close(b.bandwidth(1.0), 2.0, 1e-12));
        assert!(close(b.bandwidth(5.0), 10.0, 1e-12));
        assert!(close(b.bandwidth(50.0), 10.0, 1e-12));
        assert!(close(b.fair_share(6.0), 3.0, 1e-12));
    }

    proptest! {
        /// B(F(x)) == x wherever x is attainable and B is strictly increasing there.
        #[test]
        fn prop_inverse_roundtrip(slope in 0.5f64..8.0, max in 1.0f64..40.0, frac in 0.01f64..0.99) {
            let b = BandwidthFunction::linear(slope, max);
            let x = frac * max;
            let f = b.fair_share(x);
            prop_assert!((b.bandwidth(f) - x).abs() < 1e-9);
        }

        /// Water-filling never oversubscribes the link and is Pareto efficient
        /// (either the link is ~full or everyone has their max bandwidth).
        #[test]
        fn prop_single_link_feasible_and_efficient(
            cap in 1.0f64..60.0,
            s1 in 0.5f64..5.0, m1 in 1.0f64..20.0,
            s2 in 0.5f64..5.0, m2 in 1.0f64..20.0,
        ) {
            let fs = [BandwidthFunction::linear(s1, m1), BandwidthFunction::linear(s2, m2)];
            let (alloc, _) = single_link_allocation(&fs, cap);
            let total: f64 = alloc.iter().sum();
            prop_assert!(total <= cap + 1e-6);
            let all_max = (alloc[0] - m1).abs() < 1e-6 && (alloc[1] - m2).abs() < 1e-6;
            prop_assert!(all_max || total >= cap - cap * 1e-3 - 1e-6,
                "total={total} cap={cap} alloc={alloc:?}");
        }

        /// Bandwidth functions are non-decreasing.
        #[test]
        fn prop_bandwidth_monotone(f1 in 0.0f64..20.0, df in 0.0f64..20.0) {
            let b = BandwidthFunction::paper_flow1();
            prop_assert!(b.bandwidth(f1 + df) + 1e-12 >= b.bandwidth(f1));
        }

        /// Network allocation respects every link capacity.
        #[test]
        fn prop_network_allocation_feasible(
            c0 in 2.0f64..40.0, c1 in 2.0f64..40.0, c2 in 2.0f64..40.0,
            s in 0.5f64..4.0,
        ) {
            let fs = vec![
                BandwidthFunction::linear(s, 20.0),
                BandwidthFunction::linear(1.0, 15.0),
                BandwidthFunction::paper_flow2(),
            ];
            let paths = vec![vec![0, 1], vec![1, 2], vec![0, 2]];
            let caps = [c0, c1, c2];
            let alloc = network_allocation(&fs, &paths, &caps);
            let mut load = [0.0f64; 3];
            for (i, path) in paths.iter().enumerate() {
                for &l in path {
                    load[l] += alloc[i];
                }
            }
            for l in 0..3 {
                prop_assert!(load[l] <= caps[l] * (1.0 + 1e-6) + 1e-6,
                    "link {l}: load={} cap={}", load[l], caps[l]);
            }
        }
    }
}

//! The NUM **Oracle**: ground-truth optimal allocations.
//!
//! The paper's evaluation compares every transport against "a numerical fluid
//! model simulation that takes the current network state ... and outputs the
//! optimal rate allocation according to the NUM problem" (§6). This module is
//! that oracle.
//!
//! The solver is a **dual coordinate-ascent (Gauss–Seidel) method**: cycling
//! over links, each link's price is set (by bisection) to the exact value
//! that makes the link either saturated or free with zero price, holding the
//! other prices fixed. For smooth strictly-concave utilities the dual is
//! differentiable and concave, so exact coordinate maximization converges to
//! the dual optimum; the corresponding primal rates `x_i = U'⁻¹(Σ p_l)` then
//! solve the NUM problem. No step-size parameter is involved, which is what
//! makes this solver a trustworthy reference (unlike DGD, whose tuning is the
//! very thing the paper criticizes).
//!
//! Every solution is validated with [`kkt_residuals`] before being returned.

use crate::kkt::{kkt_residuals, KktResiduals};
use crate::topology::{FluidNetwork, MultipathGroups};
use crate::{EPS, MAX_RATE};

/// Configuration for the oracle solver.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Maximum number of Gauss–Seidel sweeps over the links.
    pub max_sweeps: usize,
    /// Target on the maximum KKT residual.
    pub tolerance: f64,
    /// Bisection iterations per link-price update.
    pub bisection_iters: usize,
}

impl Default for Oracle {
    fn default() -> Self {
        Self {
            max_sweeps: 2_000,
            tolerance: 1e-6,
            bisection_iters: 100,
        }
    }
}

/// The result of an oracle solve.
#[derive(Debug, Clone)]
pub struct OracleSolution {
    /// Optimal flow rates (one per flow, same order as the network's flows).
    pub rates: Vec<f64>,
    /// Optimal link prices (dual variables, one per link).
    pub prices: Vec<f64>,
    /// KKT residuals of the returned point.
    pub residuals: KktResiduals,
    /// Number of Gauss–Seidel sweeps performed.
    pub sweeps: usize,
    /// Whether the KKT residuals met the requested tolerance.
    pub converged: bool,
}

impl Oracle {
    /// An oracle with default settings (tolerance `1e-6`).
    pub fn new() -> Self {
        Self::default()
    }

    /// An oracle with a custom KKT tolerance.
    pub fn with_tolerance(tolerance: f64) -> Self {
        Self {
            tolerance,
            ..Self::default()
        }
    }

    /// Solve the NUM problem for `net`.
    ///
    /// Utilities must be strictly concave (all of the catalogue in
    /// [`crate::utility`] except α-fair with `α = 0`); a purely linear
    /// utility makes the primal solution non-unique and the bisection
    /// degenerate.
    ///
    /// Returns an empty solution for a network with no flows.
    pub fn solve(&self, net: &FluidNetwork) -> OracleSolution {
        let n = net.num_flows();
        let m = net.num_links();
        if n == 0 {
            return OracleSolution {
                rates: Vec::new(),
                prices: vec![0.0; m],
                residuals: KktResiduals {
                    stationarity: 0.0,
                    primal_feasibility: 0.0,
                    complementary_slackness: 0.0,
                    dual_feasibility: 0.0,
                },
                sweeps: 0,
                converged: true,
            };
        }

        let flows_per_link = net.flows_per_link();
        let caps = net.capacities();

        // Initial prices: pretend each link is the only bottleneck of the
        // flows crossing it and each flow gets an equal share of it. This is
        // a warm start, not a requirement for convergence.
        let mut prices = vec![0.0_f64; m];
        for l in 0..m {
            let flows = &flows_per_link[l];
            if flows.is_empty() {
                continue;
            }
            let share = caps[l] / flows.len() as f64;
            let avg_marginal = flows
                .iter()
                .map(|&i| net.flows()[i].utility.marginal(share))
                .sum::<f64>()
                / flows.len() as f64;
            prices[l] = avg_marginal / net.flows()[flows[0]].path.len().max(1) as f64;
        }

        // Rates implied by a price vector.
        let rates_for = |prices: &[f64]| -> Vec<f64> {
            (0..n)
                .map(|i| {
                    let p = net.path_price(prices, i);
                    net.flows()[i].utility.inverse_marginal(p.max(0.0))
                })
                .collect()
        };

        let mut sweeps = 0;
        let mut best: Option<(Vec<f64>, Vec<f64>, KktResiduals)> = None;

        for sweep in 0..self.max_sweeps {
            sweeps = sweep + 1;
            for l in 0..m {
                let flows = &flows_per_link[l];
                if flows.is_empty() {
                    prices[l] = 0.0;
                    continue;
                }
                // Load through link l as a function of its own price `q`,
                // with every other price fixed.
                let load_at = |q: f64, prices: &[f64]| -> f64 {
                    flows
                        .iter()
                        .map(|&i| {
                            let rest = net.path_price(prices, i) - prices[l];
                            net.flows()[i]
                                .utility
                                .inverse_marginal((rest + q).max(0.0))
                                .min(MAX_RATE)
                        })
                        .sum()
                };
                if load_at(0.0, &prices) <= caps[l] + EPS {
                    prices[l] = 0.0;
                    continue;
                }
                // Find an upper bound where the link is no longer saturated.
                let mut hi = prices[l].max(1e-9);
                let mut guard = 0;
                while load_at(hi, &prices) > caps[l] && guard < 200 {
                    hi *= 2.0;
                    guard += 1;
                }
                let mut lo = 0.0_f64;
                for _ in 0..self.bisection_iters {
                    let mid = 0.5 * (lo + hi);
                    if load_at(mid, &prices) > caps[l] {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                prices[l] = 0.5 * (lo + hi);
            }

            let rates = rates_for(&prices);
            let res = kkt_residuals(net, &rates, &prices);
            let better = match &best {
                Some((_, _, b)) => res.max() < b.max(),
                None => true,
            };
            if better {
                best = Some((rates.clone(), prices.clone(), res));
            }
            if res.within(self.tolerance) {
                return OracleSolution {
                    rates,
                    prices,
                    residuals: res,
                    sweeps,
                    converged: true,
                };
            }
        }

        let (rates, prices, residuals) =
            best.expect("at least one sweep ran because the network has flows");
        let converged = residuals.within(self.tolerance);
        OracleSolution {
            rates,
            prices,
            residuals,
            sweeps,
            converged,
        }
    }

    /// Solve a **multipath** NUM problem where subflows are grouped into
    /// aggregates (resource pooling, row 4 of Table 1).
    ///
    /// The objective is `Σ_g U_g(Σ_{p∈g} x_p)`; it is concave but not
    /// *strictly* concave in the subflow rates, so the subflow split is not
    /// unique. The solver adds a tiny strictly-concave regularizer
    /// `ε Σ_p log x_p` (ε = `regularizer`) to pin a unique solution, which is
    /// the standard trick and matches what the packet-level heuristic
    /// converges to in practice. The returned rates are per *subflow*;
    /// aggregate rates can be recovered with
    /// [`MultipathGroups::aggregate_rates`].
    pub fn solve_multipath(
        &self,
        net: &FluidNetwork,
        groups: &MultipathGroups,
        regularizer: f64,
    ) -> OracleSolution {
        assert!(regularizer > 0.0, "regularizer must be positive");
        let n = net.num_flows();
        let m = net.num_links();
        if n == 0 {
            return self.solve(net);
        }
        let flows_per_link = net.flows_per_link();
        let caps = net.capacities();

        // Given link prices, the optimal response of aggregate `g` solves
        //   maximize U_g(Σ_p x_p) + ε Σ_p log x_p − Σ_p q_p x_p,
        // whose first-order conditions are U_g'(y) + ε/x_p = q_p. Writing
        // μ = U_g'(y), this gives x_p = ε/(q_p − μ) and the scalar equation
        //   U_g'⁻¹(μ) = ε Σ_p 1/(q_p − μ),
        // which has a unique root μ ∈ (0, min_p q_p) (LHS decreasing in μ,
        // RHS increasing), found by bisection.
        let group_response = |g: usize, prices: &[f64], out: &mut [f64]| {
            let members = groups.members(g);
            let utility = &net.flows()[members[0]].utility;
            let qs: Vec<f64> = members
                .iter()
                .map(|&i| net.path_price(prices, i).max(1e-12))
                .collect();
            let q_min = qs.iter().cloned().fold(f64::INFINITY, f64::min);
            let total_at =
                |mu: f64| -> f64 { qs.iter().map(|&q| regularizer / (q - mu)).sum::<f64>() };
            // f(mu) = U'^{-1}(mu) - ε Σ 1/(q_p - mu): decreasing in mu.
            let f = |mu: f64| utility.inverse_marginal(mu).min(MAX_RATE) - total_at(mu);
            let mut lo = q_min * 1e-12;
            let mut hi = q_min * (1.0 - 1e-12);
            if f(lo) <= 0.0 {
                // Even at vanishing marginal the regularizer dominates; the
                // aggregate is tiny on every path.
                for (k, &i) in members.iter().enumerate() {
                    out[i] = regularizer / qs[k];
                }
                return;
            }
            for _ in 0..self.bisection_iters {
                let mid = 0.5 * (lo + hi);
                if f(mid) > 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let mu = 0.5 * (lo + hi);
            for (k, &i) in members.iter().enumerate() {
                out[i] = regularizer / (qs[k] - mu).max(1e-15);
            }
        };

        let rates_for = |prices: &[f64]| -> Vec<f64> {
            let mut rates = vec![0.0_f64; n];
            for g in 0..groups.num_groups() {
                group_response(g, prices, &mut rates);
            }
            rates
        };

        // Which groups touch each link (their response must be recomputed when
        // that link's price changes).
        let mut groups_per_link: Vec<Vec<usize>> = vec![Vec::new(); m];
        for l in 0..m {
            let mut gs: Vec<usize> = flows_per_link[l]
                .iter()
                .map(|&i| groups.group_of(i))
                .collect();
            gs.sort_unstable();
            gs.dedup();
            groups_per_link[l] = gs;
        }

        let mut prices = vec![1e-3_f64; m];
        let mut sweeps = 0;
        let mut best: Option<(Vec<f64>, Vec<f64>, KktResiduals)> = None;

        for sweep in 0..self.max_sweeps {
            sweeps = sweep + 1;
            for l in 0..m {
                if flows_per_link[l].is_empty() {
                    prices[l] = 0.0;
                    continue;
                }
                // Load through link l as a function of its own price, holding
                // other prices fixed (monotone decreasing by dual convexity).
                let load_at = |q: f64, prices: &mut Vec<f64>, scratch: &mut Vec<f64>| -> f64 {
                    let saved = prices[l];
                    prices[l] = q;
                    for &g in &groups_per_link[l] {
                        group_response(g, prices, scratch);
                    }
                    prices[l] = saved;
                    flows_per_link[l].iter().map(|&i| scratch[i]).sum()
                };
                let mut scratch = rates_for(&prices);
                if load_at(0.0, &mut prices, &mut scratch) <= caps[l] + EPS {
                    prices[l] = 0.0;
                    continue;
                }
                let mut hi = prices[l].max(1e-9);
                let mut guard = 0;
                while load_at(hi, &mut prices, &mut scratch) > caps[l] && guard < 200 {
                    hi *= 2.0;
                    guard += 1;
                }
                let mut lo = 0.0_f64;
                for _ in 0..self.bisection_iters {
                    let mid = 0.5 * (lo + hi);
                    if load_at(mid, &mut prices, &mut scratch) > caps[l] {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                prices[l] = hi;
            }

            // Gauss–Seidel alone converges slowly here because the aggregate
            // couples all of a group's path prices: the slow mode is a common
            // under- or over-pricing of every link. Kill it with a global
            // rescaling step: find the multiplier `t` on all prices for which
            // the most-loaded link is exactly saturated (monotone in `t`, so
            // bisection applies).
            {
                let max_util = |t: f64| -> f64 {
                    let scaled: Vec<f64> = prices.iter().map(|&p| p * t).collect();
                    let r = rates_for(&scaled);
                    let loads = net.link_loads(&r);
                    loads
                        .iter()
                        .zip(caps.iter())
                        .map(|(&ld, &c)| ld / c)
                        .fold(0.0_f64, f64::max)
                };
                let (mut lo, mut hi) = (0.25_f64, 4.0_f64);
                if max_util(lo) >= 1.0 && max_util(hi) <= 1.0 {
                    for _ in 0..60 {
                        let mid = 0.5 * (lo + hi);
                        if max_util(mid) > 1.0 {
                            lo = mid;
                        } else {
                            hi = mid;
                        }
                    }
                    let t = hi;
                    for p in prices.iter_mut() {
                        *p *= t;
                    }
                }
            }

            let rates = rates_for(&prices);
            let res = kkt_residuals(net, &rates, &prices);
            // For the multipath objective the per-subflow stationarity of the
            // plain KKT check is off by the ε-regularizer, so convergence is
            // judged on feasibility and complementary slackness only.
            let err = res.primal_feasibility.max(res.complementary_slackness);
            let better = match &best {
                Some((_, _, b)) => err < b.primal_feasibility.max(b.complementary_slackness),
                None => true,
            };
            if better {
                best = Some((rates.clone(), prices.clone(), res));
            }
            // The ε-regularizer itself perturbs the solution by O(ε), so
            // requiring residuals below ε would never terminate; accept once
            // the point is within a small multiple of the regularizer.
            let accept = self.tolerance.max(10.0 * regularizer);
            if err <= accept {
                return OracleSolution {
                    rates,
                    prices,
                    residuals: res,
                    sweeps,
                    converged: true,
                };
            }
        }

        let (rates, prices, residuals) = best.expect("at least one sweep ran");
        let converged = residuals
            .primal_feasibility
            .max(residuals.complementary_slackness)
            <= self.tolerance.max(10.0 * regularizer);
        OracleSolution {
            rates,
            prices,
            residuals,
            sweeps,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxmin::weighted_max_min;
    use crate::topology::{FluidFlow, FluidNetwork};
    use crate::utility::{AlphaFair, FctUtility, LogUtility};
    use proptest::prelude::*;
    use rand::{seq::SliceRandom, Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn single_link_proportional_fairness_splits_evenly() {
        let mut net = FluidNetwork::new();
        let l = net.add_link(10.0);
        net.add_simple_flow(vec![l], LogUtility::new());
        net.add_simple_flow(vec![l], LogUtility::new());
        let sol = Oracle::new().solve(&net);
        assert!(sol.converged, "{:?}", sol.residuals);
        assert!(close(sol.rates[0], 5.0, 1e-4), "{:?}", sol.rates);
        assert!(close(sol.rates[1], 5.0, 1e-4), "{:?}", sol.rates);
        assert!(close(sol.prices[0], 0.2, 1e-3), "{:?}", sol.prices);
    }

    #[test]
    fn weighted_proportional_fairness_splits_by_weight() {
        let mut net = FluidNetwork::new();
        let l = net.add_link(12.0);
        net.add_simple_flow(vec![l], LogUtility::weighted(1.0));
        net.add_simple_flow(vec![l], LogUtility::weighted(2.0));
        net.add_simple_flow(vec![l], LogUtility::weighted(3.0));
        let sol = Oracle::new().solve(&net);
        assert!(sol.converged);
        assert!(close(sol.rates[0], 2.0, 1e-3), "{:?}", sol.rates);
        assert!(close(sol.rates[1], 4.0, 1e-3), "{:?}", sol.rates);
        assert!(close(sol.rates[2], 6.0, 1e-3), "{:?}", sol.rates);
    }

    #[test]
    fn parking_lot_proportional_fairness() {
        // Known closed form: long flow gets 1/3, short flows get 2/3 (cap 1).
        let mut net = FluidNetwork::new();
        let l0 = net.add_link(1.0);
        let l1 = net.add_link(1.0);
        net.add_simple_flow(vec![l0, l1], LogUtility::new());
        net.add_simple_flow(vec![l0], LogUtility::new());
        net.add_simple_flow(vec![l1], LogUtility::new());
        let sol = Oracle::new().solve(&net);
        assert!(sol.converged);
        assert!(close(sol.rates[0], 1.0 / 3.0, 1e-3), "{:?}", sol.rates);
        assert!(close(sol.rates[1], 2.0 / 3.0, 1e-3), "{:?}", sol.rates);
        assert!(close(sol.rates[2], 2.0 / 3.0, 1e-3), "{:?}", sol.rates);
    }

    #[test]
    fn alpha_two_parking_lot_biases_toward_short_flows_less_than_alpha_one() {
        // As alpha grows the allocation approaches max-min (1/2, 1/2, 1/2).
        let build = |alpha: f64| {
            let mut net = FluidNetwork::new();
            let l0 = net.add_link(1.0);
            let l1 = net.add_link(1.0);
            net.add_simple_flow(vec![l0, l1], AlphaFair::new(alpha));
            net.add_simple_flow(vec![l0], AlphaFair::new(alpha));
            net.add_simple_flow(vec![l1], AlphaFair::new(alpha));
            net
        };
        let x1 = Oracle::new().solve(&build(1.0)).rates[0];
        let x4 = Oracle::new().solve(&build(4.0)).rates[0];
        let x16 = Oracle::new().solve(&build(16.0)).rates[0];
        assert!(x1 < x4 && x4 < x16, "{x1} {x4} {x16}");
        assert!(x16 < 0.5 + 1e-3);
    }

    #[test]
    fn fct_utility_gives_small_flow_most_of_the_link() {
        let mut net = FluidNetwork::new();
        let l = net.add_link(10.0);
        net.add_simple_flow(vec![l], FctUtility::new(1e4));
        net.add_simple_flow(vec![l], FctUtility::new(1e7));
        let sol = Oracle::new().solve(&net);
        assert!(sol.converged);
        assert!(sol.rates[0] > 9.0 * sol.rates[1], "{:?}", sol.rates);
        assert!(close(sol.rates[0] + sol.rates[1], 10.0, 1e-3));
    }

    #[test]
    fn empty_network_is_trivially_converged() {
        let net = FluidNetwork::new();
        let sol = Oracle::new().solve(&net);
        assert!(sol.converged);
        assert!(sol.rates.is_empty());
    }

    #[test]
    fn unconstrained_flows_get_zero_price_links() {
        // One flow on a huge link alongside a tiny link that nobody uses.
        let mut net = FluidNetwork::new();
        let big = net.add_link(100.0);
        let _unused = net.add_link(1.0);
        net.add_simple_flow(vec![big], LogUtility::new());
        let sol = Oracle::new().solve(&net);
        assert!(sol.converged);
        // Proportional fairness on a single flow: it takes the whole link.
        assert!(close(sol.rates[0], 100.0, 1e-3), "{:?}", sol.rates);
        assert!(sol.prices[1].abs() < 1e-9);
    }

    fn random_instance(seed: u64, links: usize, flows: usize, alpha: f64) -> FluidNetwork {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut net = FluidNetwork::new();
        for _ in 0..links {
            net.add_link(rng.gen_range(1.0..20.0));
        }
        for _ in 0..flows {
            let path_len = rng.gen_range(1..=3.min(links));
            let mut path: Vec<usize> = (0..links).collect();
            path.shuffle(&mut rng);
            path.truncate(path_len);
            net.add_flow(FluidFlow::new(path, AlphaFair::new(alpha)));
        }
        net
    }

    #[test]
    fn random_instances_reach_kkt_tolerance() {
        for seed in 0..20 {
            let net = random_instance(seed, 6, 15, 1.0);
            let sol = Oracle::new().solve(&net);
            assert!(sol.converged, "seed {seed} residuals {:?}", sol.residuals);
        }
    }

    #[test]
    fn multipath_oracle_pools_capacity() {
        // Two disjoint paths of capacity 10 and 2; a single aggregate with two
        // subflows (one per path) should end up with total rate ~12 when it is
        // the only traffic.
        let mut net = FluidNetwork::new();
        let a = net.add_link(10.0);
        let b = net.add_link(2.0);
        net.add_flow(FluidFlow::new(vec![a], LogUtility::new()).in_group(0));
        net.add_flow(FluidFlow::new(vec![b], LogUtility::new()).in_group(0));
        let groups = MultipathGroups::from_network(&net);
        let sol = Oracle::new().solve_multipath(&net, &groups, 1e-4);
        let totals = groups.aggregate_rates(&sol.rates);
        assert!(
            close(totals[0], 12.0, 0.05),
            "{totals:?} rates={:?}",
            sol.rates
        );
        assert!(net.is_feasible(&sol.rates, 1e-3));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The oracle's allocation is feasible and KKT-optimal on random
        /// proportional-fairness instances.
        #[test]
        fn prop_oracle_kkt_optimal(seed in 0u64..300, links in 2usize..6, flows in 1usize..12) {
            let net = random_instance(seed, links, flows, 1.0);
            let sol = Oracle::with_tolerance(1e-5).solve(&net);
            prop_assert!(net.is_feasible(&sol.rates, 1e-4));
            prop_assert!(sol.residuals.within(1e-3), "residuals {:?}", sol.residuals);
        }

        /// The oracle beats (or matches) any feasible random allocation in
        /// total utility — i.e. it really is a maximizer.
        #[test]
        fn prop_oracle_dominates_random_feasible_points(seed in 0u64..200) {
            let net = random_instance(seed, 4, 8, 1.0);
            let sol = Oracle::new().solve(&net);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdead_beef);
            // Random feasible point: scale a random positive vector until it fits.
            let mut rates: Vec<f64> = (0..net.num_flows()).map(|_| rng.gen_range(0.01..1.0)).collect();
            let loads = net.link_loads(&rates);
            let caps = net.capacities();
            let worst = loads.iter().zip(caps.iter()).map(|(l, c)| l / c).fold(0.0f64, f64::max);
            if worst > 0.0 {
                for r in rates.iter_mut() { *r /= worst * 1.001; }
            }
            prop_assert!(net.is_feasible(&rates, 1e-6));
            prop_assert!(net.total_utility(&sol.rates) >= net.total_utility(&rates) - 1e-6);
        }

        /// On a single-bottleneck topology, the NUM optimum for pure
        /// (weighted) log utilities IS the weighted max-min allocation —
        /// proportional fairness splits one link in proportion to weight,
        /// which is exactly what `weighted_max_min` computes. This pins the
        /// two solvers to each other on the one case with a closed form.
        #[test]
        fn prop_oracle_matches_weighted_maxmin_on_single_bottleneck(
            seed in 0u64..300,
            flows in 1usize..10,
            cap in 1.0f64..50.0,
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x51_b0);
            let mut net = FluidNetwork::new();
            let l = net.add_link(cap);
            let weights: Vec<f64> =
                (0..flows).map(|_| rng.gen_range(0.1..5.0)).collect();
            for &w in &weights {
                net.add_simple_flow(vec![l], LogUtility::weighted(w));
            }
            let sol = Oracle::with_tolerance(1e-7).solve(&net);
            prop_assert!(sol.converged, "oracle did not converge: {:?}", sol.residuals);
            let mm = weighted_max_min(&net, &weights);
            for (i, (&o, &m)) in sol.rates.iter().zip(mm.iter()).enumerate() {
                prop_assert!(
                    close(o, m, 1e-4),
                    "flow {i}: oracle {o} vs weighted max-min {m} (weights {weights:?})"
                );
            }
            // And the KKT residuals of that solution are below tolerance.
            prop_assert!(sol.residuals.within(1e-4), "residuals {:?}", sol.residuals);
        }
    }
}

//! # numfabric
//!
//! A full Rust reproduction of **"NUMFabric: Fast and Flexible Bandwidth
//! Allocation in Datacenters"** (Nagaraj et al., SIGCOMM 2016).
//!
//! This facade crate re-exports the workspace's crates under one roof:
//!
//! * [`num`] — network-utility-maximization substrate: utility functions
//!   (Table 1), bandwidth functions, weighted max-min, the NUM oracle, KKT
//!   checks, and fluid-model algorithm iterations (xWI, DGD, RCP*).
//! * [`sim`] — a deterministic packet-level discrete-event datacenter network
//!   simulator (leaf-spine topologies, output-queued switches, WFQ/STFQ,
//!   pFabric and ECN queues, per-flow agents, rate tracers).
//! * [`core`] — NUMFabric itself: the Swift weighted max-min transport and
//!   the xWI explicit weight inference protocol (§4–§5 of the paper).
//! * [`baselines`] — DGD, RCP*, DCTCP and pFabric.
//! * [`workloads`] — flow-size distributions, Poisson arrivals, the
//!   semi-dynamic convergence scenario, permutation traffic, the convergence
//!   criterion, the ideal (oracle) fluid reference, and parameter-sweep
//!   grids ([`workloads::sweep`]): `SweepSpec` expands scenario × topology
//!   × protocol × load × size × seed axes into self-contained cells, each
//!   deterministically seeded from `(base_seed, cell_index)`, which the
//!   `numfabric-bench` sweep engine executes on a work-stealing thread pool
//!   (`numfabric-run sweep`) with `--threads`-independent aggregate output.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `numfabric-bench` crate for the binaries that regenerate every table and
//! figure of the paper's evaluation.
//!
//! ## Quick start
//!
//! ```
//! use numfabric::core::{numfabric_network, NumFabricAgent, NumFabricConfig};
//! use numfabric::num::utility::LogUtility;
//! use numfabric::sim::topology::{LeafSpineConfig, Topology};
//! use numfabric::sim::SimTime;
//!
//! // A small leaf-spine fabric running NUMFabric with proportional fairness.
//! let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
//! let config = NumFabricConfig::paper_default();
//! let mut net = numfabric_network(topo, &config);
//! let hosts: Vec<_> = net.topology().hosts().to_vec();
//! let flow = net.add_flow(
//!     hosts[0], hosts[4], None, SimTime::ZERO, 0, None,
//!     Box::new(NumFabricAgent::new(config.clone(), LogUtility::new())),
//! );
//! net.run_until(SimTime::from_millis(3));
//! assert!(net.flow_rate_estimate(flow) > 8e9); // it fills its 10 Gbps NIC
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use numfabric_baselines as baselines;
pub use numfabric_num as num;
pub use numfabric_sim as sim;
pub use numfabric_workloads as workloads;

/// NUMFabric itself (Swift + xWI). Re-exported from `numfabric-core`; named
/// `core` here for discoverability, shadowing nothing from `std`.
pub mod core {
    pub use numfabric_core::protocol::{install_numfabric, numfabric_network};
    pub use numfabric_core::*;
}

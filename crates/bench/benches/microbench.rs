//! Micro-benchmarks of the substrates: event queue, STFQ scheduler, weighted
//! max-min solver, NUM oracle, and end-to-end packet simulation throughput.
//! These back the engineering claims (the simulator and solvers are fast
//! enough to run the paper-scale experiments) and catch performance
//! regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numfabric_core::protocol::numfabric_network;
use numfabric_core::{NumFabricAgent, NumFabricConfig};
use numfabric_num::fluid::{FluidAlgorithm, XwiFluid};
use numfabric_num::utility::LogUtility;
use numfabric_num::{weighted_max_min, FluidFlow, FluidNetwork, Oracle};
use numfabric_sim::event::{Event, EventQueue};
use numfabric_sim::packet::{Packet, DEFAULT_PAYLOAD_BYTES};
use numfabric_sim::queue::{PfabricQueue, QueueDiscipline, StfqQueue};
use numfabric_sim::topology::{LeafSpineConfig, Route, Topology};
use numfabric_sim::{RouteTable, SimTime};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(
                    SimTime::from_nanos((i * 7919) % 1_000_000),
                    Event::FlowStart { flow: i as usize },
                );
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            black_box(count)
        })
    });
}

fn bench_stfq(c: &mut Criterion) {
    c.bench_function("stfq_enqueue_dequeue_1k_packets_8_flows", |b| {
        let route = RouteTable::new().intern(Route::from_links(vec![0]));
        b.iter(|| {
            let mut q = StfqQueue::new(10_000_000);
            for i in 0..1_000u64 {
                let mut p = Packet::data((i % 8) as usize, i * 1460, DEFAULT_PAYLOAD_BYTES, route);
                p.header.virtual_packet_len = 1500.0 / ((i % 8) + 1) as f64;
                q.enqueue(p, SimTime::ZERO);
            }
            let mut served = 0;
            while q.dequeue(SimTime::ZERO).is_some() {
                served += 1;
            }
            black_box(served)
        })
    });
}

fn random_fluid_network(seed: u64, links: usize, flows: usize) -> (FluidNetwork, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = FluidNetwork::new();
    for _ in 0..links {
        net.add_link(rng.gen_range(5.0..40.0));
    }
    let mut weights = Vec::new();
    for _ in 0..flows {
        let a = rng.gen_range(0..links);
        let b = loop {
            let b = rng.gen_range(0..links);
            if b != a {
                break b;
            }
        };
        net.add_flow(FluidFlow::new(vec![a, b], LogUtility::new()));
        weights.push(rng.gen_range(0.1..4.0));
    }
    (net, weights)
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_solvers");
    for &flows in &[50usize, 200, 500] {
        let (net, weights) = random_fluid_network(1, 20, flows);
        group.bench_with_input(
            BenchmarkId::new("weighted_max_min", flows),
            &flows,
            |b, _| b.iter(|| black_box(weighted_max_min(&net, &weights))),
        );
        group.bench_with_input(BenchmarkId::new("oracle_solve", flows), &flows, |b, _| {
            let oracle = Oracle::with_tolerance(1e-4);
            b.iter(|| black_box(oracle.solve(&net).rates))
        });
    }
    group.finish();
}

fn bench_pfabric_churn(c: &mut Criterion) {
    // The pFabric worst-drop path: a shallow buffer under heavy overload, so
    // almost every enqueue evicts the lowest-priority queued packet.
    c.bench_function("pfabric_worst_drop_churn_10k", |b| {
        let route = RouteTable::new().intern(Route::from_links(vec![0]));
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let priorities: Vec<f64> = (0..10_000).map(|_| rng.gen_range(1.0..1e7)).collect();
        b.iter(|| {
            let mut q = PfabricQueue::new(64 * 1500);
            let mut outcomes = 0u64;
            for (i, &prio) in priorities.iter().enumerate() {
                let mut p = Packet::data(i % 32, i as u64 * 1460, DEFAULT_PAYLOAD_BYTES, route);
                p.header.pfabric_priority = prio;
                if q.enqueue(p, SimTime::ZERO).accepted() {
                    outcomes += 1;
                }
                if i % 8 == 0 {
                    q.dequeue(SimTime::ZERO);
                }
            }
            black_box(outcomes)
        })
    });
}

fn bench_fluid_step(c: &mut Criterion) {
    // One synchronous xWI iteration on a mid-sized network — the inner loop
    // of every fluid convergence comparison. The `step` variant includes the
    // FluidState snapshot clone; `step_in_place` is the allocation-free path
    // the convergence loops actually use.
    c.bench_function("xwi_fluid_step_20links_500flows", |b| {
        let (net, _) = random_fluid_network(3, 20, 500);
        let mut xwi = XwiFluid::with_defaults(net);
        b.iter(|| black_box(xwi.step().rates[0]))
    });
    c.bench_function("xwi_fluid_step_in_place_20links_500flows", |b| {
        let (net, _) = random_fluid_network(3, 20, 500);
        let mut xwi = XwiFluid::with_defaults(net);
        b.iter(|| {
            xwi.step_in_place();
            black_box(FluidAlgorithm::rates(&xwi)[0])
        })
    });
}

fn bench_packet_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_sim");
    group.sample_size(10);
    group.bench_function("numfabric_32hosts_16flows_5ms", |b| {
        b.iter(|| {
            let topo = Topology::leaf_spine(&LeafSpineConfig::small(32, 4, 2));
            let cfg = NumFabricConfig::default();
            let mut net = numfabric_network(topo, &cfg);
            let hosts: Vec<_> = net.topology().hosts().to_vec();
            for i in 0..16 {
                net.add_flow(
                    hosts[i],
                    hosts[16 + i],
                    None,
                    SimTime::ZERO,
                    i,
                    None,
                    Box::new(NumFabricAgent::new(cfg.clone(), LogUtility::new())),
                );
            }
            net.run_until(SimTime::from_millis(5));
            black_box(net.flow_rate_estimate(0))
        })
    });
    group.bench_function("numfabric_8hosts_4flows_2ms", |b| {
        b.iter(|| {
            let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
            let cfg = NumFabricConfig::default();
            let mut net = numfabric_network(topo, &cfg);
            let hosts: Vec<_> = net.topology().hosts().to_vec();
            for i in 0..4 {
                net.add_flow(
                    hosts[i],
                    hosts[4 + i],
                    None,
                    SimTime::ZERO,
                    i,
                    None,
                    Box::new(NumFabricAgent::new(cfg.clone(), LogUtility::new())),
                );
            }
            net.run_until(SimTime::from_millis(2));
            black_box(net.flow_rate_estimate(0))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_stfq,
    bench_solvers,
    bench_pfabric_churn,
    bench_fluid_step,
    bench_packet_sim
);
criterion_main!(benches);

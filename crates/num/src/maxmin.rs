//! Exact network-wide **weighted max-min** allocation.
//!
//! This is the allocation Swift (the bottom layer of NUMFabric) realizes in
//! the network: every flow `i` has a weight `w_i`; all flows grow their rate
//! proportionally to their weight until a link saturates; flows crossing a
//! saturated link are frozen at their current rate; the remaining flows keep
//! growing; and so on until every flow is frozen (progressive filling /
//! water-filling, cf. Bertsekas & Gallager).
//!
//! The solver here is exact (up to floating point) and is used (a) as the
//! inner step of the fluid xWI iteration, (b) as the ground truth against
//! which the packet-level Swift transport is validated, and (c) to compute
//! ideal allocations for the resource-pooling experiments.

use crate::topology::{FlowId, FluidNetwork};
use crate::EPS;

/// Reusable state for [`weighted_max_min_into`]: the per-link flow lists and
/// capacities of a fixed network plus the solver's scratch vectors, so
/// repeated solves (e.g. one per fluid-model iteration) allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct MaxMinWorkspace {
    flows_per_link: Vec<Vec<FlowId>>,
    capacities: Vec<f64>,
    frozen: Vec<bool>,
    consumed: Vec<f64>,
    live_weight: Vec<f64>,
}

impl MaxMinWorkspace {
    /// Precompute the per-link structure of `net`.
    pub fn for_network(net: &FluidNetwork) -> Self {
        Self {
            flows_per_link: net.flows_per_link(),
            capacities: net.capacities(),
            frozen: Vec::new(),
            consumed: Vec::new(),
            live_weight: Vec::new(),
        }
    }

    /// The flows crossing each link (index = link id).
    pub fn flows_per_link(&self) -> &[Vec<FlowId>] {
        &self.flows_per_link
    }

    /// The link capacities (index = link id).
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }
}

/// Compute the weighted max-min allocation for `weights` on `net`.
///
/// Returns one rate per flow. Flows whose paths only cross links that never
/// saturate get an unbounded fair share in theory; in practice every flow
/// crosses at least one finite-capacity link (enforced by
/// [`FluidNetwork::add_flow`]), so every flow is frozen at some bottleneck
/// and the result is finite.
///
/// # Panics
/// Panics if `weights.len() != net.num_flows()` or any weight is not finite
/// or not strictly positive.
pub fn weighted_max_min(net: &FluidNetwork, weights: &[f64]) -> Vec<f64> {
    let mut workspace = MaxMinWorkspace::for_network(net);
    let mut rates = Vec::new();
    weighted_max_min_into(net, weights, &mut workspace, &mut rates);
    rates
}

/// Allocation-free variant of [`weighted_max_min`]: writes the rates into
/// `rates` (resized as needed) using buffers in `workspace`, which must have
/// been built with [`MaxMinWorkspace::for_network`] for this `net`.
///
/// Produces bit-identical results to [`weighted_max_min`] — the operation
/// order is unchanged, only the buffer reuse differs.
///
/// # Panics
/// As [`weighted_max_min`].
pub fn weighted_max_min_into(
    net: &FluidNetwork,
    weights: &[f64],
    workspace: &mut MaxMinWorkspace,
    rates: &mut Vec<f64>,
) {
    assert_eq!(weights.len(), net.num_flows(), "one weight per flow");
    for (i, &w) in weights.iter().enumerate() {
        assert!(
            w.is_finite() && w > 0.0,
            "weight of flow {i} must be positive, got {w}"
        );
    }
    let n = net.num_flows();
    let m = net.num_links();
    rates.clear();
    if n == 0 {
        return;
    }
    rates.resize(n, 0.0);

    let MaxMinWorkspace {
        flows_per_link,
        capacities,
        frozen,
        consumed,
        live_weight,
    } = workspace;
    frozen.clear();
    frozen.resize(n, false);
    // Capacity already consumed on each link by frozen flows.
    consumed.clear();
    consumed.resize(m, 0.0);
    // Sum of weights of unfrozen flows on each link.
    live_weight.clear();
    live_weight.extend((0..m).map(|l| flows_per_link[l].iter().map(|&i| weights[i]).sum::<f64>()));

    // Common water level: every unfrozen flow has rate w_i * level.
    let mut level = 0.0_f64;

    for _round in 0..n {
        if frozen.iter().all(|&f| f) {
            break;
        }
        // The water level at which each link with live flows saturates:
        // consumed_l + level * live_weight_l == capacity_l.
        let mut next_level = f64::INFINITY;
        for l in 0..m {
            if live_weight[l] <= EPS {
                continue;
            }
            let lvl = (capacities[l] - consumed[l]) / live_weight[l];
            if lvl < next_level {
                next_level = lvl;
            }
        }
        if !next_level.is_finite() {
            // No live link constrains the remaining flows (cannot happen for
            // valid networks, but guard against pathological inputs): freeze
            // the remaining flows at the current level.
            for i in 0..n {
                if !frozen[i] {
                    rates[i] = weights[i] * level;
                    frozen[i] = true;
                }
            }
            break;
        }
        // Numerical guard: the level never decreases.
        level = next_level.max(level);

        // Freeze every unfrozen flow that crosses a link saturated at `level`.
        let mut froze_any = false;
        for l in 0..m {
            if live_weight[l] <= EPS {
                continue;
            }
            let slack = capacities[l] - consumed[l] - level * live_weight[l];
            if slack <= 1e-9 * capacities[l].max(1.0) {
                for &i in &flows_per_link[l] {
                    if frozen[i] {
                        continue;
                    }
                    rates[i] = weights[i] * level;
                    frozen[i] = true;
                    froze_any = true;
                    // Move the flow's contribution from "live" to "consumed"
                    // on every link of its path.
                    for &k in &net.flows()[i].path {
                        consumed[k] += rates[i];
                        live_weight[k] -= weights[i];
                        if live_weight[k] < 0.0 {
                            live_weight[k] = 0.0;
                        }
                    }
                }
            }
        }
        if !froze_any {
            // Shouldn't happen; avoid an infinite loop by freezing everything.
            for i in 0..n {
                if !frozen[i] {
                    rates[i] = weights[i] * level;
                    frozen[i] = true;
                }
            }
            break;
        }
    }
}

/// The max-min fair allocation (all weights equal to 1).
pub fn max_min(net: &FluidNetwork) -> Vec<f64> {
    weighted_max_min(net, &vec![1.0; net.num_flows()])
}

/// Check whether `rates` is a weighted max-min allocation for `weights` on
/// `net`, up to relative tolerance `rel_tol`.
///
/// The characterization used: the allocation is feasible, and every flow has
/// at least one *bottleneck* link — a saturated link on its path where the
/// flow's normalized rate `x_i / w_i` is (weakly) maximal among the flows
/// crossing that link.
pub fn is_weighted_max_min(
    net: &FluidNetwork,
    weights: &[f64],
    rates: &[f64],
    rel_tol: f64,
) -> bool {
    assert_eq!(weights.len(), net.num_flows());
    assert_eq!(rates.len(), net.num_flows());
    if !net.is_feasible(rates, rel_tol) {
        return false;
    }
    let loads = net.link_loads(rates);
    let caps = net.capacities();
    let flows_per_link = net.flows_per_link();
    for (i, flow) in net.flows().iter().enumerate() {
        let norm_i = rates[i] / weights[i];
        let has_bottleneck = flow.path.iter().any(|&l| {
            let saturated = loads[l] >= caps[l] * (1.0 - rel_tol) - 1e-12;
            if !saturated {
                return false;
            }
            flows_per_link[l]
                .iter()
                .all(|&j| rates[j] / weights[j] <= norm_i * (1.0 + rel_tol) + 1e-12)
        });
        if !has_bottleneck {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{FluidFlow, FluidNetwork};
    use crate::utility::LogUtility;
    use proptest::prelude::*;
    use rand::{seq::SliceRandom, Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn single_link_splits_in_proportion_to_weights() {
        let mut net = FluidNetwork::new();
        let l = net.add_link(12.0);
        for _ in 0..3 {
            net.add_simple_flow(vec![l], LogUtility::new());
        }
        let rates = weighted_max_min(&net, &[1.0, 2.0, 3.0]);
        assert!(close(rates[0], 2.0, 1e-9), "{rates:?}");
        assert!(close(rates[1], 4.0, 1e-9), "{rates:?}");
        assert!(close(rates[2], 6.0, 1e-9), "{rates:?}");
    }

    #[test]
    fn classic_parking_lot() {
        // Three links in a row; one long flow over all three, one short flow
        // per link. Max-min: every link splits 50/50 between the long flow and
        // its local short flow => long = 5, shorts = 5 (capacity 10 each).
        let mut net = FluidNetwork::new();
        let links: Vec<_> = (0..3).map(|_| net.add_link(10.0)).collect();
        net.add_simple_flow(links.clone(), LogUtility::new());
        for &l in &links {
            net.add_simple_flow(vec![l], LogUtility::new());
        }
        let rates = max_min(&net);
        assert!(close(rates[0], 5.0, 1e-9), "{rates:?}");
        for i in 1..4 {
            assert!(close(rates[i], 5.0, 1e-9), "{rates:?}");
        }
        assert!(is_weighted_max_min(&net, &[1.0; 4], &rates, 1e-6));
    }

    #[test]
    fn unequal_links_create_cascading_bottlenecks() {
        // Flow A on link0 (cap 2) and link1 (cap 10); flow B on link1 only.
        // A is bottlenecked at 2 on link0; B then gets 8 on link1.
        let mut net = FluidNetwork::new();
        let l0 = net.add_link(2.0);
        let l1 = net.add_link(10.0);
        net.add_simple_flow(vec![l0, l1], LogUtility::new());
        net.add_simple_flow(vec![l1], LogUtility::new());
        let rates = max_min(&net);
        assert!(close(rates[0], 2.0, 1e-9), "{rates:?}");
        assert!(close(rates[1], 8.0, 1e-9), "{rates:?}");
    }

    #[test]
    fn weights_shift_the_bottleneck_split() {
        let mut net = FluidNetwork::new();
        let l = net.add_link(10.0);
        net.add_simple_flow(vec![l], LogUtility::new());
        net.add_simple_flow(vec![l], LogUtility::new());
        let rates = weighted_max_min(&net, &[9.0, 1.0]);
        assert!(close(rates[0], 9.0, 1e-9));
        assert!(close(rates[1], 1.0, 1e-9));
    }

    #[test]
    fn checker_detects_non_max_min() {
        let mut net = FluidNetwork::new();
        let l = net.add_link(10.0);
        net.add_simple_flow(vec![l], LogUtility::new());
        net.add_simple_flow(vec![l], LogUtility::new());
        // Feasible but not max-min: unequal split with equal weights while the
        // link is saturated works (it *is* saturated so each flow does have a
        // saturated link, but the smaller flow's normalized rate is not maximal).
        assert!(!is_weighted_max_min(&net, &[1.0, 1.0], &[7.0, 3.0], 1e-6));
        // Underutilized: no flow has a bottleneck.
        assert!(!is_weighted_max_min(&net, &[1.0, 1.0], &[3.0, 3.0], 1e-6));
        assert!(is_weighted_max_min(&net, &[1.0, 1.0], &[5.0, 5.0], 1e-6));
    }

    #[test]
    fn empty_network_returns_empty() {
        let net = FluidNetwork::new();
        assert!(weighted_max_min(&net, &[]).is_empty());
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_weight() {
        let mut net = FluidNetwork::new();
        let l = net.add_link(1.0);
        net.add_simple_flow(vec![l], LogUtility::new());
        weighted_max_min(&net, &[0.0]);
    }

    /// Build a random leaf-spine-ish network with random single-path flows.
    fn random_network(seed: u64, links: usize, flows: usize) -> (FluidNetwork, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut net = FluidNetwork::new();
        for _ in 0..links {
            net.add_link(rng.gen_range(1.0..20.0));
        }
        let mut weights = Vec::with_capacity(flows);
        for _ in 0..flows {
            let path_len = rng.gen_range(1..=3.min(links));
            let mut path: Vec<usize> = (0..links).collect();
            path.shuffle(&mut rng);
            path.truncate(path_len);
            net.add_flow(FluidFlow::new(path, LogUtility::new()));
            weights.push(rng.gen_range(0.1..4.0));
        }
        (net, weights)
    }

    #[test]
    fn random_networks_satisfy_max_min_characterization() {
        for seed in 0..30 {
            let (net, weights) = random_network(seed, 6, 12);
            let rates = weighted_max_min(&net, &weights);
            assert!(
                is_weighted_max_min(&net, &weights, &rates, 1e-6),
                "seed {seed}: {rates:?}"
            );
        }
    }

    proptest! {
        /// The allocation is always feasible and work-conserving on at least
        /// one link per flow (every flow has a saturated link on its path).
        #[test]
        fn prop_weighted_max_min_valid(seed in 0u64..500, links in 2usize..8, flows in 1usize..20) {
            let (net, weights) = random_network(seed, links, flows);
            let rates = weighted_max_min(&net, &weights);
            prop_assert!(net.is_feasible(&rates, 1e-6));
            prop_assert!(is_weighted_max_min(&net, &weights, &rates, 1e-5));
        }

        /// Scaling all weights by a constant does not change the allocation.
        #[test]
        fn prop_weight_scale_invariance(seed in 0u64..200, scale in 0.1f64..50.0) {
            let (net, weights) = random_network(seed, 5, 10);
            let a = weighted_max_min(&net, &weights);
            let scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
            let b = weighted_max_min(&net, &scaled);
            for i in 0..a.len() {
                prop_assert!(close(a[i], b[i], 1e-6), "{} vs {}", a[i], b[i]);
            }
        }

        /// Increasing one flow's weight never decreases its rate.
        #[test]
        fn prop_weight_monotonicity(seed in 0u64..200, boost in 1.1f64..10.0) {
            let (net, weights) = random_network(seed, 5, 8);
            let base = weighted_max_min(&net, &weights);
            let mut boosted = weights.clone();
            boosted[0] *= boost;
            let after = weighted_max_min(&net, &boosted);
            prop_assert!(after[0] + 1e-9 >= base[0] * (1.0 - 1e-9));
        }
    }
}

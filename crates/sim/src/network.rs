//! The simulation engine: links with queues and controllers, flows with
//! transport agents, and the event loop tying them together.
//!
//! A [`Network`] is built from a [`Topology`] plus a queue discipline per
//! link; protocols then attach per-flow [`FlowAgent`]s and per-link
//! [`LinkController`]s. The engine models:
//!
//! * store-and-forward output-queued switches (one queue per egress link),
//! * link serialization and propagation delay,
//! * packet drops decided by the queue disciplines,
//! * per-flow and per-link statistics, destination-side EWMA rate tracking,
//!   and flow-completion-time bookkeeping.
//!
//! Every run is deterministic: events are processed in `(time, key)` order
//! with FIFO tie-breaking, and the engine itself uses no randomness. Flow
//! timers are first-class: [`AgentCtx::set_timer`] returns a
//! [`TimerHandle`] that [`AgentCtx::cancel_timer`] revokes, and stopping or
//! completing a flow structurally cancels its outstanding timers (see
//! [`crate::timer`]).
//!
//! Two further mechanisms ride on the same event loop:
//!
//! * **A control lane per link.** Non-data packets (ACKs, SYNs) bypass the
//!   data queue discipline at every egress and are served with strict
//!   priority, modeling the highest-priority control class real fabrics
//!   configure. An ACK therefore waits at most one data serialization per
//!   hop instead of a full reverse-path data backlog — the fix for the
//!   bidirectional ACK-queueing rate gap. Link controllers still observe
//!   every dequeued packet, so price stamping on reverse paths is intact.
//! * **Link impairments.** [`Network::schedule_link_change`] injects
//!   failures, restorations, speed changes, loss and jitter; see
//!   [`crate::impairment`] for the determinism story and [`LinkChange`] for
//!   per-variant semantics.
//!
//! # Domain decomposition and threading
//!
//! Internally the network is **domain-decomposed**:
//! [`Network::set_partitions`] splits the fabric into spatial partitions
//! (via [`Topology::partition`]), each owning a disjoint subset of nodes
//! with its own timing wheel, [`TimerService`], link runtimes and endpoint
//! state. Cross-partition deliveries travel as boundary messages released
//! at conservative time barriers (lookahead = the minimum propagation delay
//! over boundary links), and [`Network::set_partition_threads`] runs the
//! partitions' epochs concurrently on a pool of long-lived worker threads.
//!
//! Determinism does not rest on a shared counter or on any cross-partition
//! ordering. Instead every event carries a **content-derived key**: a pure
//! function of *what the event is* (its kind, its link or flow, and a
//! per-event discriminator — see `event_key`). Within one partition's wheel
//! the `(time, key)` order plus FIFO tie-breaking reproduces the schedule
//! order; across partitions no ordering is needed at all, because each
//! partition touches only state it owns and boundary messages are released
//! only at barriers both sides have reached. The observable report is
//! therefore a pure function of the seed for **any** `--partitions N ×
//! --partition-threads T` combination — threads change wall-clock time,
//! never a byte of output. The default single partition *is* the historical
//! single-queue engine; the public API is unchanged either way.
//!
//! Link changes are **coordinator-level sync events**: they apply between
//! epochs, at their scheduled instant, before any same-instant partition
//! events — never from inside a worker — so reroutes and backlog drops
//! mutate the shared tables only while every partition is parked at the
//! barrier. That is also why data races are structurally impossible: during
//! an epoch workers hold `&mut` to disjoint `PartitionCore`s and `&` to
//! the frozen `Shared` tables, and the borrow checker enforces exactly
//! that split.

use crate::event::{BatchTicket, Event, EventId, EventQueue};
use crate::flow::{FlowPhase, FlowSpec, FlowStats};
use crate::impairment::{derive_link_seed, splitmix64_unit, LinkChange, LinkHealth};
use crate::packet::{FlowId, Packet, PacketHeader, PacketKind, SeqNo, HEADER_BYTES, MTU_BYTES};
use crate::queue::QueueDiscipline;
use crate::routes::{RouteId, RouteTable};
use crate::time::{SimDuration, SimTime};
use crate::timer::{TimerHandle, TimerService};
use crate::topology::{LinkId, NodeId, Route, Topology};
use crate::tracer::EwmaRateTracer;
use crate::transport::{AckMode, FlowAgent, LinkController};
use std::collections::VecDeque;

/// Snapshot of one link's counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkStats {
    /// Total bytes serialized onto the link.
    pub bytes_transmitted: u64,
    /// Packets serialized onto the link.
    pub packets_transmitted: u64,
    /// Packets dropped at this link's queue.
    pub packets_dropped: u64,
    /// Current queue backlog in bytes.
    pub queue_bytes: usize,
    /// Current queue backlog in packets.
    pub queue_packets: usize,
}

// ---- content-derived event keys -------------------------------------------
//
// Each event's wheel key encodes what the event *is*, not when it was
// allocated: `(kind << 61) | (primary << 39) | secondary`. Keys need not be
// unique (except flow timers, whose cancellation set is keyed by seq):
// events with equal `(time, key)` can only originate from the same owning
// partition in a deterministic schedule order, and the wheel's FIFO
// tie-break preserves that order. Because the key is derived from content,
// it is identical whichever partition schedules it and whether the epoch
// ran inline or on a worker thread — this is what replaced the globally
// shared sequence counter.

const KIND_FLOW_START: u64 = 0;
const KIND_FLOW_STOP: u64 = 1;
// kind 2 is reserved for link changes, which never enter a wheel: they are
// coordinator-level sync events (see `GlobalEvent`).
const KIND_LINK_TIMER: u64 = 3;
const KIND_FLOW_TIMER: u64 = 4;
const KIND_TRANSMIT_COMPLETE: u64 = 5;
const KIND_ARRIVAL: u64 = 6;

const KEY_SECONDARY_BITS: u32 = 39;
const KEY_PRIMARY_BITS: u32 = 22;

/// The primary id (link or flow) embedded in a content-derived key. Every
/// event a `Network` schedules carries such a key as its seq, so the batch
/// dispatcher can group same-link arrivals without claiming their payloads.
fn key_primary(seq: u64) -> u64 {
    (seq >> KEY_SECONDARY_BITS) & ((1 << KEY_PRIMARY_BITS) - 1)
}

fn event_key(kind: u64, primary: u64, secondary: u64) -> u64 {
    debug_assert!(kind < 8, "event kind out of range");
    debug_assert!(primary < (1 << KEY_PRIMARY_BITS), "primary id out of range");
    debug_assert!(
        secondary < (1 << KEY_SECONDARY_BITS),
        "secondary id out of range"
    );
    (kind << (KEY_PRIMARY_BITS + KEY_SECONDARY_BITS)) | (primary << KEY_SECONDARY_BITS) | secondary
}

/// The wheel key of an arrival: keyed by the link plus a packet
/// discriminator (kind rank, flow, low sequence bits). Collisions are
/// harmless — equal-key arrivals on one link leave its serializing queue in
/// a deterministic order and FIFO-tie-break in that order.
fn arrival_key(link: LinkId, packet: &Packet) -> u64 {
    let rank: u64 = match packet.kind {
        PacketKind::Syn => 0,
        PacketKind::Data => 1,
        PacketKind::Ack => 2,
    };
    let ident = match packet.kind {
        PacketKind::Ack => packet.header.ack_bytes,
        _ => packet.seq,
    };
    let secondary = (rank << 37) | ((packet.flow as u64 & 0x3F_FFFF) << 15) | (ident & 0x7FFF);
    event_key(KIND_ARRIVAL, link as u64, secondary)
}

// ---- state layout ---------------------------------------------------------

/// The read-only-during-epochs tables every partition shares: topology,
/// routes, flow specs, ownership maps and link health/capacity. The
/// coordinator holds `&mut` and mutates these only *between* epochs (at
/// setup time or at a link-change sync point); during an epoch workers see
/// `&Shared`, so a data race on them is a compile error, not a test
/// failure.
struct Shared {
    topo: Topology,
    routes: RouteTable,
    specs: Vec<FlowSpec>,
    /// Partition owning each node.
    node_part: Vec<usize>,
    /// Partition owning each link's runtime state (its tail node's).
    link_part: Vec<usize>,
    /// Whether each link crosses a partition boundary (its endpoints live
    /// in different partitions) — the links whose deliveries become
    /// boundary messages.
    link_cut: Vec<bool>,
    /// Current capacity of each link in bits/s.
    link_caps: Vec<f64>,
    /// Current impairment state of each link.
    link_health: Vec<LinkHealth>,
}

/// One link's mutable runtime, owned by the partition of its tail node.
struct LinkState {
    queue: Box<dyn QueueDiscipline>,
    /// Strict-priority lane for non-data packets (ACKs, SYNs): never
    /// dropped by a discipline, always served before the data queue.
    control_lane: VecDeque<Packet>,
    controller: Option<Box<dyn LinkController>>,
    busy: bool,
    /// SplitMix64 state for randomized impairments (loss, jitter) on this
    /// link, derived from `(impairment_seed, link)`. The stream advances
    /// only when this link transmits while impaired, and a link's
    /// transmissions are serialized by its own queue, so the draw sequence
    /// is invariant under partitioning and threading.
    rng: u64,
    stats: LinkStats,
}

impl LinkState {
    fn new(queue: Box<dyn QueueDiscipline>, rng: u64) -> Self {
        Self {
            queue,
            control_lane: VecDeque::new(),
            controller: None,
            busy: false,
            rng,
            stats: LinkStats::default(),
        }
    }
}

/// A flow's sender-side endpoint state, owned by the source host's
/// partition.
struct SenderState {
    agent: Option<Box<dyn FlowAgent>>,
    phase: FlowPhase,
    bytes_sent: u64,
    packets_sent: u64,
    bytes_acked: u64,
    started_at: Option<SimTime>,
    /// Monotone counter giving each armed flow timer a unique wheel key
    /// (the timer cancellation set is keyed by seq, so flow-timer keys
    /// must never repeat within a flow).
    timer_arms: u64,
}

/// A flow's receiver-side endpoint state, owned by the destination host's
/// partition. The receiver is universal (see [`crate::transport::AckMode`]):
/// it counts delivery, tracks the EWMA rate, detects completion and
/// reflects an ACK per data packet.
struct ReceiverState {
    bytes_delivered: u64,
    packets_delivered: u64,
    completed_at: Option<SimTime>,
    tracer: EwmaRateTracer,
    /// Arrival instant of the previous data packet, echoed to the sender
    /// as `inter_packet_time` (NUMFabric's Swift estimator reads it).
    /// Reset when the flow is rerouted.
    last_data_arrival: Option<SimTime>,
    ack_mode: AckMode,
}

/// Boundary traffic addressed to one destination partition, accumulated
/// during an epoch and exchanged at the barrier.
#[derive(Default)]
struct OutBundle {
    /// Cross-cut arrivals, stamped `(deliver_time, key)` at creation. The
    /// conservative lookahead guarantees every deliver time is at or past
    /// the barrier that releases it.
    events: Vec<(SimTime, u64, Event)>,
    /// Per-queue flow-state releases for links owned by the destination
    /// partition (a flow that stopped or completed sheds its WFQ state on
    /// every link of its route). Releases are idempotent and commutative,
    /// so applying them at the barrier is order-insensitive.
    releases: Vec<(LinkId, FlowId)>,
}

impl OutBundle {
    fn is_empty(&self) -> bool {
        self.events.is_empty() && self.releases.is_empty()
    }
}

/// A link change waiting to apply at coordinator level. Not a wheel event:
/// the coordinator runs every partition up to (excluding) the change's
/// instant, applies the change while all partitions are parked, then
/// resumes. `order` preserves schedule order among same-instant changes.
struct GlobalEvent {
    at: SimTime,
    order: u64,
    link: LinkId,
    change: LinkChange,
}

/// One spatial partition's event core: its own timing wheel, timer
/// bookkeeping, link runtimes, endpoint state and boundary mailboxes.
/// `Send` (asserted at compile time below) so an epoch can run on a worker
/// thread.
struct PartitionCore {
    index: usize,
    events: EventQueue,
    timers: TimerService,
    /// Runtime state of the links this partition owns (`None` elsewhere).
    links: Vec<Option<LinkState>>,
    /// Sender endpoints of flows whose source host lives here.
    senders: Vec<Option<SenderState>>,
    /// Receiver endpoints of flows whose destination host lives here.
    receivers: Vec<Option<ReceiverState>>,
    /// Per-flow drop counts charged by *this* partition (a flow's packets
    /// can be dropped far from its endpoints; report totals sum cores).
    flow_drops: Vec<u64>,
    /// Per-flow in-flight packet *delta* charged by this partition:
    /// incremented where a packet is created (data send, ACK reflection),
    /// decremented where one leaves the network (endpoint delivery or any
    /// drop site). A flow's true in-flight count is the sum over cores —
    /// zero means no packet of the flow exists anywhere, the quiescence
    /// condition [`Network::try_retire_flow`] requires before recycling
    /// the flow's slot.
    flow_packets: Vec<i64>,
    /// Per-link drop counts charged by this partition for links it does
    /// *not* own (in-flight packets lost at a downed link's head end).
    link_drops: Vec<u64>,
    /// Boundary messages addressed *to* this partition, delivered into the
    /// wheel at the next barrier.
    inbox: Vec<(SimTime, u64, Event)>,
    inbox_releases: Vec<(LinkId, FlowId)>,
    /// Boundary traffic produced by this partition this epoch, per
    /// destination partition.
    outbound: Vec<OutBundle>,
    /// This partition's local clock (the time of its last handled event,
    /// or the last sync point).
    clock: SimTime,
    events_processed: u64,
    /// When enabled, every handled event is recorded as `(time, key)` —
    /// the conformance trace the determinism proptests compare across
    /// partition/thread counts.
    trace: Option<Vec<(SimTime, u64)>>,
    /// Dispatch same-timestamp batches through [`advance_core_batched`]
    /// (the default). Disabled by the differential tests to pin the batched
    /// path bit-identical to the per-event reference path.
    batch_dispatch: bool,
    /// Arena-style dispatch scratch, reused across every batch of the
    /// simulation (taken/restored around each epoch, never reallocated in
    /// steady state).
    scratch_tickets: Vec<BatchTicket>,
    scratch_run: Vec<(EventId, Packet)>,
}

impl PartitionCore {
    fn new(index: usize, partitions: usize, num_links: usize) -> Self {
        Self {
            index,
            events: EventQueue::new(),
            timers: TimerService::new(),
            links: (0..num_links).map(|_| None).collect(),
            senders: Vec::new(),
            receivers: Vec::new(),
            flow_drops: Vec::new(),
            flow_packets: Vec::new(),
            link_drops: vec![0; num_links],
            inbox: Vec::new(),
            inbox_releases: Vec::new(),
            outbound: (0..partitions).map(|_| OutBundle::default()).collect(),
            clock: SimTime::ZERO,
            events_processed: 0,
            trace: None,
            batch_dispatch: true,
            scratch_tickets: Vec::new(),
            scratch_run: Vec::new(),
        }
    }
}

// ---- per-partition event handling -----------------------------------------
//
// Everything below runs with `&Shared` + `&mut PartitionCore`: the exact
// capability a worker thread holds during an epoch. The inline (single
// thread) and threaded paths call the same functions, which is the whole
// equivalence argument for thread-count invariance.

/// `true` when `t` lies outside the stretch bound.
fn beyond(t: SimTime, bound: SimTime, inclusive: bool) -> bool {
    t > bound || (!inclusive && t == bound)
}

/// Merge this partition's released boundary messages into its wheel.
fn deliver_boundary(core: &mut PartitionCore) {
    for (link, flow) in std::mem::take(&mut core.inbox_releases) {
        if let Some(ls) = core.links[link].as_mut() {
            ls.queue.release_flow(flow);
        }
    }
    for (at, seq, event) in std::mem::take(&mut core.inbox) {
        core.events.schedule_seeded(at, event, seq);
    }
}

/// Run one partition up to the epoch barrier (exclusive) and the stretch
/// bound. Returns the time of the next pending event, if any.
fn advance_core(
    shared: &Shared,
    core: &mut PartitionCore,
    barrier: Option<SimTime>,
    bound: SimTime,
    inclusive: bool,
) -> Option<SimTime> {
    if core.batch_dispatch {
        advance_core_batched(shared, core, barrier, bound, inclusive)
    } else {
        advance_core_per_event(shared, core, barrier, bound, inclusive)
    }
}

/// The per-event reference path: peek, bound-check, pop and dispatch one
/// event at a time. Kept verbatim as the executable specification the
/// batched path is differentially tested against.
fn advance_core_per_event(
    shared: &Shared,
    core: &mut PartitionCore,
    barrier: Option<SimTime>,
    bound: SimTime,
    inclusive: bool,
) -> Option<SimTime> {
    loop {
        let (t, _) = core.events.peek_key()?;
        if beyond(t, bound, inclusive) || barrier.is_some_and(|b| t >= b) {
            return Some(t);
        }
        let (time, id, event) = core.events.pop_entry().expect("peeked event must exist");
        core.clock = time;
        core.events_processed += 1;
        if let Some(trace) = &mut core.trace {
            trace.push((time, id.as_u64()));
        }
        handle_event(shared, core, id, event);
    }
}

/// Record one handled event exactly as the per-event path would.
#[inline]
fn record_dispatch(core: &mut PartitionCore, time: SimTime, id: EventId) {
    core.events_processed += 1;
    if let Some(trace) = &mut core.trace {
        trace.push((time, id.as_u64()));
    }
}

/// Fire every same-timestamp event a handler scheduled *during* the open
/// batch whose key sorts before `next_seq` (exclusive — tickets win seq
/// ties, because equal keys dispatch in schedule order and every ticket was
/// scheduled before the batch opened).
fn drain_rejoins_before(shared: &Shared, core: &mut PartitionCore, time: SimTime, next_seq: u64) {
    while core
        .events
        .rejoin_front_seq()
        .is_some_and(|rs| rs < next_seq)
    {
        if let Some((id, event)) = core.events.claim_rejoin() {
            record_dispatch(core, time, id);
            handle_event(shared, core, id, event);
        }
    }
}

/// The batched dispatch path: drain each same-timestamp group in one pass,
/// check the bound/barrier once per group instead of once per event, and
/// hand consecutive same-link arrivals to [`handle_arrival_run`] with the
/// top-level match and link-health lookup hoisted out of the loop.
///
/// Bit-identity with [`advance_core_per_event`] holds by construction:
/// tickets are dispatched in seq order, same-timestamp events scheduled by
/// handlers mid-batch (rejoins) are interleaved at their exact seq position
/// before every dispatch, and claiming a ticket early only mutates queue
/// bookkeeping that no handler can observe (arrivals are never
/// cancellable). The differential proptests in `tests/event_core.rs` pin
/// this equivalence on adversarial tie-heavy schedules.
fn advance_core_batched(
    shared: &Shared,
    core: &mut PartitionCore,
    barrier: Option<SimTime>,
    bound: SimTime,
    inclusive: bool,
) -> Option<SimTime> {
    let mut tickets = std::mem::take(&mut core.scratch_tickets);
    let result = loop {
        let Some((t, _)) = core.events.peek_key() else {
            break None;
        };
        if beyond(t, bound, inclusive) || barrier.is_some_and(|b| t >= b) {
            break Some(t);
        }
        tickets.clear();
        let time = core
            .events
            .begin_batch(&mut tickets)
            .expect("peeked event must open a batch");
        debug_assert_eq!(time, t);
        core.clock = time;
        let mut i = 0;
        while i < tickets.len() {
            let ticket = tickets[i];
            drain_rejoins_before(shared, core, time, ticket.seq());
            if ticket.is_arrival() {
                // Content keys group same-link arrivals contiguously in seq
                // order; claim the whole run, then dispatch it with the
                // link's (epoch-frozen) health resolved once.
                let link = key_primary(ticket.seq()) as LinkId;
                let mut run = std::mem::take(&mut core.scratch_run);
                run.clear();
                while let Some(tk) = tickets.get(i) {
                    if !tk.is_arrival() || key_primary(tk.seq()) as LinkId != link {
                        break;
                    }
                    i += 1;
                    if let Some((id, event)) = core.events.claim(*tk) {
                        match event {
                            Event::Arrival { link: l, packet } => {
                                debug_assert_eq!(l, link);
                                run.push((id, packet));
                            }
                            _ => unreachable!("arrival-pool ticket must claim an arrival"),
                        }
                    }
                }
                handle_arrival_run(shared, core, time, link, &mut run);
                core.scratch_run = run;
            } else {
                i += 1;
                if let Some((id, event)) = core.events.claim(ticket) {
                    record_dispatch(core, time, id);
                    handle_event(shared, core, id, event);
                }
            }
        }
        // Tickets are exhausted; flush remaining rejoins in seq order
        // (handlers may keep scheduling at the batch timestamp).
        while core.events.rejoin_front_seq().is_some() {
            if let Some((id, event)) = core.events.claim_rejoin() {
                record_dispatch(core, time, id);
                handle_event(shared, core, id, event);
            }
        }
        core.events.end_batch();
    };
    core.scratch_tickets = tickets;
    result
}

/// Dispatch a claimed run of same-timestamp arrivals on one link. The link
/// health check is hoisted out of the loop (link changes are coordinator
/// sync events, so health is frozen while any batch is open), and the
/// top-level event match is skipped entirely. Same-timestamp events that
/// the handlers schedule mid-run are interleaved at their seq position.
fn handle_arrival_run(
    shared: &Shared,
    core: &mut PartitionCore,
    time: SimTime,
    link: LinkId,
    run: &mut Vec<(EventId, Packet)>,
) {
    let up = shared.link_health[link].up;
    for (id, mut packet) in run.drain(..) {
        drain_rejoins_before(shared, core, time, id.as_u64());
        record_dispatch(core, time, id);
        if !up {
            core.link_drops[link] += 1;
            core.flow_drops[packet.flow] += 1;
            core.flow_packets[packet.flow] -= 1;
            continue;
        }
        packet.advance_hop();
        if let Some(next) = packet.next_link(&shared.routes) {
            enqueue_on_link(shared, core, next, packet);
            continue;
        }
        match packet.kind {
            PacketKind::Data | PacketKind::Syn => receiver_deliver(shared, core, packet),
            PacketKind::Ack => sender_ack(shared, core, packet),
        }
    }
}

fn handle_event(shared: &Shared, core: &mut PartitionCore, id: EventId, event: Event) {
    match event {
        Event::FlowStart { flow } => handle_flow_start(shared, core, flow),
        Event::FlowStop { flow } => handle_flow_stop(shared, core, flow),
        Event::FlowTimer { flow, tag } => dispatch_timer(shared, core, flow, tag, id),
        Event::LinkTimer { link, tag } => handle_link_timer(core, link, tag),
        Event::TransmitComplete { link } => {
            core.links[link]
                .as_mut()
                .expect("transmit-complete on owning core")
                .busy = false;
            try_transmit(shared, core, link);
        }
        Event::Arrival { link, packet } => handle_arrival(shared, core, link, packet),
        Event::LinkChange { .. } => {
            unreachable!("link changes are coordinator-level sync events, never wheel events")
        }
    }
}

fn handle_flow_start(shared: &Shared, core: &mut PartitionCore, flow: FlowId) {
    {
        let sender = core.senders[flow].as_mut().expect("sender on source core");
        if sender.phase != FlowPhase::Pending {
            return;
        }
        sender.phase = FlowPhase::Active;
        sender.started_at = Some(core.clock);
    }
    with_agent(shared, core, flow, |agent, ctx| agent.on_start(ctx));
}

fn handle_flow_stop(shared: &Shared, core: &mut PartitionCore, flow: FlowId) {
    {
        let sender = core.senders[flow].as_mut().expect("sender on source core");
        if sender.phase != FlowPhase::Active {
            return;
        }
        sender.phase = FlowPhase::Stopped;
    }
    queue_releases(shared, core, flow);
    // Structural cancellation: a stopped flow leaves no timers behind to
    // fire into the dispatch path.
    core.timers.cancel_all(&mut core.events, flow);
}

/// Shed a flow's per-queue state on every link of its forward route:
/// locally for links this partition owns, via a boundary release otherwise.
fn queue_releases(shared: &Shared, core: &mut PartitionCore, flow: FlowId) {
    for &l in shared.routes.links(shared.specs[flow].route) {
        let owner = shared.link_part[l];
        if owner == core.index {
            if let Some(ls) = core.links[l].as_mut() {
                ls.queue.release_flow(flow);
            }
        } else {
            core.outbound[owner].releases.push((l, flow));
        }
    }
}

fn dispatch_timer(shared: &Shared, core: &mut PartitionCore, flow: FlowId, tag: u64, id: EventId) {
    core.timers.fired(flow, id);
    // Stop/completion cancels outstanding timers structurally; this guard
    // is defence in depth, not the cancellation mechanism.
    if core.senders[flow]
        .as_ref()
        .is_none_or(|s| s.phase != FlowPhase::Active)
    {
        return;
    }
    with_agent(shared, core, flow, |agent, ctx| agent.on_timer(tag, ctx));
}

fn handle_link_timer(core: &mut PartitionCore, link: LinkId, tag: u64) {
    let next = {
        let ls = core.links[link]
            .as_mut()
            .expect("link timer on owning core");
        let backlog = ls.queue.backlog_bytes();
        match &mut ls.controller {
            Some(ctrl) => ctrl.on_timer(core.clock, backlog),
            None => None,
        }
    };
    if let Some(delay) = next {
        let seq = event_key(KIND_LINK_TIMER, link as u64, tag & 0x7F_FFFF_FFFF);
        core.events
            .schedule_seeded(core.clock + delay, Event::LinkTimer { link, tag }, seq);
    }
}

fn enqueue_on_link(shared: &Shared, core: &mut PartitionCore, link: LinkId, mut packet: Packet) {
    debug_assert_eq!(
        shared.link_part[link], core.index,
        "enqueue must run on the link's owning partition"
    );
    if !shared.link_health[link].up {
        // Forwarding onto a failed link drops the packet at the port.
        core.links[link]
            .as_mut()
            .expect("owned link")
            .stats
            .packets_dropped += 1;
        core.flow_drops[packet.flow] += 1;
        core.flow_packets[packet.flow] -= 1;
        return;
    }
    {
        let ls = core.links[link].as_mut().expect("owned link");
        if packet.is_data() {
            if let Some(ctrl) = &mut ls.controller {
                ctrl.on_enqueue(&mut packet, core.clock);
            }
            let outcome = ls.queue.enqueue(packet, core.clock);
            if let Some(dropped) = outcome.dropped() {
                ls.stats.packets_dropped += 1;
                core.flow_drops[dropped.flow] += 1;
                core.flow_packets[dropped.flow] -= 1;
            }
        } else {
            // ACKs and SYNs ride the strict-priority control lane: they
            // skip the data discipline entirely and are never dropped by
            // buffer pressure.
            ls.control_lane.push_back(packet);
        }
    }
    try_transmit(shared, core, link);
}

fn try_transmit(shared: &Shared, core: &mut PartitionCore, link: LinkId) {
    let now = core.clock;
    let health = shared.link_health[link];
    let (packet, tx_time, lost, jitter) = {
        let ls = core.links[link].as_mut().expect("transmit on owning core");
        if ls.busy || !health.up {
            return;
        }
        // Price controllers see the *data* backlog, control lane excluded:
        // control bytes are invisible to the queue-based price signal,
        // exactly like a separate hardware class.
        let backlog = ls.queue.backlog_bytes();
        let mut packet = match ls.control_lane.pop_front() {
            Some(p) => p,
            None => match ls.queue.dequeue(now) {
                Some(p) => p,
                None => return,
            },
        };
        if let Some(ctrl) = &mut ls.controller {
            ctrl.on_dequeue(&mut packet, now, backlog);
        }
        ls.busy = true;
        ls.stats.bytes_transmitted += packet.wire_bytes as u64;
        ls.stats.packets_transmitted += 1;
        let tx_time = SimDuration::transmission(packet.wire_bytes as u64, shared.link_caps[link]);
        // Randomized impairments: one draw per decision from this link's
        // own stream, taken only while the link is impaired — unimpaired
        // runs never touch the stream, and the draw sequence follows the
        // link's serialization order, which no partitioning can change.
        let lost = health.loss > 0.0 && splitmix64_unit(&mut ls.rng) < health.loss;
        let jitter = if !lost && !health.jitter.is_zero() {
            let unit = splitmix64_unit(&mut ls.rng);
            SimDuration::from_nanos((health.jitter.as_nanos() as f64 * unit) as u64)
        } else {
            SimDuration::ZERO
        };
        (packet, tx_time, lost, jitter)
    };
    core.events.schedule_seeded(
        now + tx_time,
        Event::TransmitComplete { link },
        event_key(KIND_TRANSMIT_COMPLETE, link as u64, 0),
    );
    if lost {
        // Corrupted on the wire: it occupied the link for its full
        // serialization time but never arrives.
        core.links[link]
            .as_mut()
            .expect("owned link")
            .stats
            .packets_dropped += 1;
        core.flow_drops[packet.flow] += 1;
        core.flow_packets[packet.flow] -= 1;
    } else {
        let at = now + tx_time + shared.topo.links()[link].delay + jitter;
        let seq = arrival_key(link, &packet);
        let event = Event::Arrival { link, packet };
        if shared.link_cut[link] {
            // Boundary message: the arrival belongs to the partition on
            // the far side of the cut. It is buffered with its key and
            // released into that partition's wheel at the next barrier —
            // safe because `at >= barrier`: the cut link's propagation
            // delay is at least the lookahead window by construction.
            let dest = shared.node_part[shared.topo.links()[link].to];
            core.outbound[dest].events.push((at, seq, event));
        } else {
            core.events.schedule_seeded(at, event, seq);
        }
    }
}

fn handle_arrival(shared: &Shared, core: &mut PartitionCore, link: LinkId, mut packet: Packet) {
    // A packet in flight is delivered unless its cable is down at the
    // arrival instant: failing a link loses whatever was on the wire. The
    // drop is charged to the (possibly remote) link via this core's
    // per-link delta, summed into `link_stats`.
    if !shared.link_health[link].up {
        core.link_drops[link] += 1;
        core.flow_drops[packet.flow] += 1;
        core.flow_packets[packet.flow] -= 1;
        return;
    }
    packet.advance_hop();
    if let Some(next) = packet.next_link(&shared.routes) {
        enqueue_on_link(shared, core, next, packet);
        return;
    }
    // Delivered to the end host.
    match packet.kind {
        PacketKind::Data | PacketKind::Syn => receiver_deliver(shared, core, packet),
        PacketKind::Ack => sender_ack(shared, core, packet),
    }
}

/// The universal receiver: count delivery, track the rate, detect
/// completion, and reflect an ACK echoing the data packet's feedback
/// fields. SYNs are delivered silently (no payload, no ACK).
fn receiver_deliver(shared: &Shared, core: &mut PartitionCore, packet: Packet) {
    // The packet (data or SYN) is consumed at the end host.
    core.flow_packets[packet.flow] -= 1;
    if !packet.is_data() {
        return;
    }
    let flow = packet.flow;
    let now = core.clock;
    let (delivered, inter, ack_seq) = {
        let rx = core.receivers[flow]
            .as_mut()
            .expect("receiver on destination core");
        rx.bytes_delivered += packet.payload_bytes as u64;
        rx.packets_delivered += 1;
        rx.tracer.on_arrival(packet.payload_bytes as u64, now);
        let inter = rx.last_data_arrival.map(|last| now.duration_since(last));
        rx.last_data_arrival = Some(now);
        if rx.completed_at.is_none()
            && shared.specs[flow]
                .size_bytes
                .is_some_and(|size| rx.bytes_delivered >= size)
        {
            rx.completed_at = Some(now);
        }
        let ack_seq = match rx.ack_mode {
            AckMode::Cumulative => packet.seq + packet.payload_bytes as u64,
            AckMode::PerPacket => packet.seq,
        };
        (rx.bytes_delivered, inter, ack_seq)
    };
    let reverse = shared.specs[flow].reverse_route;
    let mut ack = Packet::ack(flow, reverse);
    ack.header.sent_time = now;
    ack.header.ack_bytes = delivered;
    ack.header.ack_seq = ack_seq;
    ack.header.reflected_path_price = packet.header.path_price;
    ack.header.reflected_path_len = packet.header.path_len;
    ack.header.reflected_rcp_feedback = packet.header.rcp_feedback;
    ack.header.ecn_echo = packet.header.ecn_marked;
    ack.header.inter_packet_time = inter;
    core.flow_packets[flow] += 1;
    let first = shared.routes.links(reverse)[0];
    enqueue_on_link(shared, core, first, ack);
}

/// An ACK reached the source host: advance the acked high-water mark,
/// detect sender-side completion, and otherwise hand the ACK to the agent.
fn sender_ack(shared: &Shared, core: &mut PartitionCore, packet: Packet) {
    let flow = packet.flow;
    core.flow_packets[flow] -= 1;
    let completed_now = {
        let sender = core.senders[flow].as_mut().expect("sender on source core");
        sender.bytes_acked = sender.bytes_acked.max(packet.header.ack_bytes);
        if sender.phase != FlowPhase::Active {
            return;
        }
        let done = shared.specs[flow]
            .size_bytes
            .is_some_and(|size| sender.bytes_acked >= size);
        if done {
            sender.phase = FlowPhase::Completed;
        }
        done
    };
    if completed_now {
        // The completing ACK is consumed by the engine, not the agent —
        // the flow is over; shed queue state and outstanding timers.
        queue_releases(shared, core, flow);
        core.timers.cancel_all(&mut core.events, flow);
    } else {
        with_agent(shared, core, flow, |agent, ctx| agent.on_ack(&packet, ctx));
    }
}

/// Temporarily detach a flow's agent, run `f` with an [`AgentCtx`], and
/// reattach. No-op if the agent is already detached (re-entrancy guard).
fn with_agent(
    shared: &Shared,
    core: &mut PartitionCore,
    flow: FlowId,
    f: impl FnOnce(&mut Box<dyn FlowAgent>, &mut AgentCtx<'_>),
) {
    let Some(mut agent) = core.senders[flow].as_mut().and_then(|s| s.agent.take()) else {
        return;
    };
    {
        let mut ctx = AgentCtx {
            shared,
            core: &mut *core,
            flow,
        };
        f(&mut agent, &mut ctx);
    }
    core.senders[flow]
        .as_mut()
        .expect("sender on source core")
        .agent = Some(agent);
}

// ---- the coordinator ------------------------------------------------------

/// The packet-level network simulator.
///
/// A `Network` owns every piece of its simulation state and is `Send`
/// (asserted at compile time below): move it to a worker thread and run it
/// there. Concurrent sweeps exploit this — one fully-owned `Network` per
/// thread — and [`Network::set_partition_threads`] additionally threads the
/// inside of a single simulation, without any change to the determinism
/// contract (see the module docs).
pub struct Network {
    shared: Shared,
    /// The per-partition event cores. Always at least one; index 0 is the
    /// whole network until [`Network::set_partitions`] says otherwise.
    parts: Vec<PartitionCore>,
    /// Conservative lookahead: the minimum propagation delay over boundary
    /// links. `None` when no link crosses a cut (single partition), in
    /// which case an epoch spans the whole stretch.
    lookahead: Option<SimDuration>,
    /// Worker threads for epoch execution (1 = inline).
    threads: usize,
    clock: SimTime,
    config: NetworkConfig,
    /// The base impairment seed; per-link streams derive from it.
    impair_seed: u64,
    /// Pending coordinator-level link changes.
    globals: Vec<GlobalEvent>,
    global_order: u64,
    /// Link changes applied so far (counted into `events_processed`).
    sync_events: u64,
    trace_enabled: bool,
    batch_dispatch: bool,
    /// Flow ids whose slots were retired by [`Network::try_retire_flow`]
    /// and are free for reuse by the next [`Network::add_flow`]. LIFO, so
    /// churn workloads keep re-touching the same hot slots and the slab's
    /// high-water mark tracks *concurrent* flows, not total flows.
    free_flows: Vec<FlowId>,
}

/// Configuration knobs of the engine itself (not of any protocol).
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Time constant of the destination-side rate measurement filter.
    pub rate_ewma_tau: SimDuration,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            rate_ewma_tau: crate::tracer::PAPER_EWMA_TAU,
        }
    }
}

impl Network {
    /// Build a network from a topology, creating one queue per link with
    /// `queue_factory`.
    pub fn new(topo: Topology, queue_factory: impl Fn(LinkId) -> Box<dyn QueueDiscipline>) -> Self {
        Self::with_config(topo, queue_factory, NetworkConfig::default())
    }

    /// Build a network with explicit engine configuration.
    pub fn with_config(
        topo: Topology,
        queue_factory: impl Fn(LinkId) -> Box<dyn QueueDiscipline>,
        config: NetworkConfig,
    ) -> Self {
        let num_nodes = topo.nodes().len();
        let num_links = topo.links().len();
        let link_caps = topo.links().iter().map(|s| s.capacity_bps).collect();
        let shared = Shared {
            topo,
            routes: RouteTable::new(),
            specs: Vec::new(),
            node_part: vec![0; num_nodes],
            link_part: vec![0; num_links],
            link_cut: vec![false; num_links],
            link_caps,
            link_health: vec![LinkHealth::default(); num_links],
        };
        let mut core = PartitionCore::new(0, 1, num_links);
        for link in 0..num_links {
            core.links[link] = Some(LinkState::new(
                queue_factory(link),
                derive_link_seed(0, link),
            ));
        }
        Self {
            shared,
            parts: vec![core],
            lookahead: None,
            threads: 1,
            clock: SimTime::ZERO,
            config,
            impair_seed: 0,
            globals: Vec::new(),
            global_order: 0,
            sync_events: 0,
            trace_enabled: false,
            batch_dispatch: true,
            free_flows: Vec::new(),
        }
    }

    /// Re-split the network into `partitions` spatial domains (see the
    /// module docs). Each partition gets its own timing wheel, timer
    /// service, link runtimes and endpoint state; events already scheduled
    /// (e.g. link controller timers installed at construction) migrate to
    /// their owning partition's wheel with their original content keys, so
    /// the partition count never perturbs event order.
    ///
    /// Must be called during setup: after construction and controller
    /// installation, before any flow is added or the simulation runs.
    ///
    /// # Panics
    /// Panics if `partitions` is zero, or if flows exist or events have
    /// already been processed.
    pub fn set_partitions(&mut self, partitions: usize) {
        assert!(partitions >= 1, "partition count must be at least 1");
        assert!(
            self.shared.specs.is_empty() && self.events_processed() == 0,
            "set_partitions must be called before flows are added or the simulation runs"
        );
        let num_links = self.shared.topo.links().len();
        let partitioning = self.shared.topo.partition(partitions);
        self.shared.node_part = partitioning.assignment().to_vec();
        self.shared.link_part = self
            .shared
            .topo
            .links()
            .iter()
            .map(|spec| self.shared.node_part[spec.from])
            .collect();
        self.shared.link_cut = self
            .shared
            .topo
            .links()
            .iter()
            .map(|spec| self.shared.node_part[spec.from] != self.shared.node_part[spec.to])
            .collect();
        self.lookahead = self
            .shared
            .topo
            .links()
            .iter()
            .enumerate()
            .filter(|&(l, _)| self.shared.link_cut[l])
            .map(|(_, spec)| spec.delay.max(SimDuration::from_nanos(1)))
            .min();
        // Migrate pending events (setup-time controller timers) and link
        // runtimes into the new per-partition cores, keeping keys intact.
        let mut pending: Vec<(SimTime, u64, Event, bool)> = Vec::new();
        let mut link_states: Vec<Option<LinkState>> = (0..num_links).map(|_| None).collect();
        for core in &mut self.parts {
            pending.extend(core.events.drain_entries());
            for (l, slot) in core.links.iter_mut().enumerate() {
                if let Some(ls) = slot.take() {
                    link_states[l] = Some(ls);
                }
            }
        }
        pending.sort_by_key(|&(t, seq, ..)| (t, seq));
        self.parts = (0..partitions)
            .map(|p| {
                let mut core = PartitionCore::new(p, partitions, num_links);
                core.trace = self.trace_enabled.then(Vec::new);
                core.batch_dispatch = self.batch_dispatch;
                core
            })
            .collect();
        for (l, slot) in link_states.iter_mut().enumerate() {
            if let Some(ls) = slot.take() {
                self.parts[self.shared.link_part[l]].links[l] = Some(ls);
            }
        }
        for (at, seq, event, cancellable) in pending {
            let p = event_partition(&self.shared, &event);
            let wheel = &mut self.parts[p].events;
            if cancellable {
                wheel.schedule_cancellable_seeded(at, event, seq);
            } else {
                wheel.schedule_seeded(at, event, seq);
            }
        }
    }

    /// Run each epoch's partitions on `threads` worker threads (clamped to
    /// at least 1; 1 means inline execution on the calling thread). Safe to
    /// change at any time — thread count affects wall-clock speed only,
    /// never a byte of output, so there is no setup-phase restriction.
    pub fn set_partition_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The number of spatial partitions this network is decomposed into.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// The worker-thread count epochs run on (1 = inline).
    pub fn partition_threads(&self) -> usize {
        self.threads
    }

    /// The topology this network was built from.
    pub fn topology(&self) -> &Topology {
        &self.shared.topo
    }

    /// Resolve an interned route id (from a [`FlowSpec`] or [`Packet`]) to
    /// the route itself.
    pub fn route(&self, id: RouteId) -> &Route {
        self.shared.routes.get(id)
    }

    /// The network's route arena (interned, deduplicated flow routes).
    pub fn routes(&self) -> &RouteTable {
        &self.shared.routes
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Attach a switch-side controller to a link. If the controller requests
    /// a periodic timer it starts `initial_timer()` from the current time.
    pub fn set_link_controller(&mut self, link: LinkId, controller: Box<dyn LinkController>) {
        let initial = controller.initial_timer();
        let p = self.shared.link_part[link];
        self.parts[p].links[link]
            .as_mut()
            .expect("link state on owning core")
            .controller = Some(controller);
        if let Some(delay) = initial {
            self.parts[p].events.schedule_seeded(
                self.clock + delay,
                Event::LinkTimer { link, tag: 0 },
                event_key(KIND_LINK_TIMER, link as u64, 0),
            );
        }
    }

    /// Attach the same controller (via a factory) to every link in the
    /// network — the common case where every switch port runs the protocol.
    pub fn set_all_link_controllers(
        &mut self,
        factory: impl Fn(LinkId, f64) -> Box<dyn LinkController>,
    ) {
        for link in 0..self.shared.topo.links().len() {
            let capacity = self.shared.link_caps[link];
            self.set_link_controller(link, factory(link, capacity));
        }
    }

    /// Add a flow between two hosts of a leaf-spine topology, pinning it to
    /// the spine chosen by `spine_choice` (ECMP hash stand-in). Returns the
    /// flow id. The flow starts at `start_time` (scheduled automatically).
    #[allow(clippy::too_many_arguments)]
    pub fn add_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        size_bytes: Option<u64>,
        start_time: SimTime,
        spine_choice: usize,
        group: Option<usize>,
        agent: Box<dyn FlowAgent>,
    ) -> FlowId {
        let route = self.shared.topo.host_route(src, dst, spine_choice);
        let id = self.add_flow_on_route(src, dst, route, size_bytes, start_time, group, agent);
        // Remember the ECMP pin so link failures can re-select the route
        // over the surviving paths; explicit-route flows stay `None`.
        self.shared.specs[id].ecmp_choice = Some(spine_choice);
        id
    }

    /// Add a flow with an explicit route (for custom topologies).
    #[allow(clippy::too_many_arguments)]
    pub fn add_flow_on_route(
        &mut self,
        src: NodeId,
        dst: NodeId,
        route: Route,
        size_bytes: Option<u64>,
        start_time: SimTime,
        group: Option<usize>,
        agent: Box<dyn FlowAgent>,
    ) -> FlowId {
        assert!(
            !route.is_empty(),
            "flow route must traverse at least one link"
        );
        let reverse = self.shared.topo.reverse_route(&route);
        let base_rtt = self
            .shared
            .topo
            .base_rtt(&route, MTU_BYTES as u64, HEADER_BYTES as u64);
        let route = self.shared.routes.intern(route);
        let reverse_route = self.shared.routes.intern(reverse);
        let spec = FlowSpec {
            src,
            dst,
            size_bytes,
            start_time: start_time.max(self.clock),
            route,
            reverse_route,
            base_rtt,
            group,
            ecmp_choice: None,
        };
        let start = spec.start_time;
        let txp = self.shared.node_part[src];
        let rxp = self.shared.node_part[dst];
        let ack_mode = agent.ack_mode();
        // Recycle a retired slot when one is free (the flow slab): churn
        // workloads then keep live memory proportional to *concurrent*
        // flows. A recycled id's previous occupant was fully quiescent
        // (no packets, timers or events anywhere — see `try_retire_flow`),
        // so reusing its content-derived event keys is safe.
        let (id, reused) = match self.free_flows.pop() {
            Some(id) => {
                self.shared.specs[id] = spec;
                (id, true)
            }
            None => {
                let id = self.shared.specs.len();
                self.shared.specs.push(spec);
                (id, false)
            }
        };
        let mut sender = Some(SenderState {
            agent: Some(agent),
            phase: FlowPhase::Pending,
            bytes_sent: 0,
            packets_sent: 0,
            bytes_acked: 0,
            started_at: None,
            timer_arms: 0,
        });
        let mut receiver = Some(ReceiverState {
            bytes_delivered: 0,
            packets_delivered: 0,
            completed_at: None,
            tracer: EwmaRateTracer::new(self.config.rate_ewma_tau),
            last_data_arrival: None,
            ack_mode,
        });
        // Dense per-flow bookkeeping on every partition: endpoint state
        // lives only where it is owned, but the flow id must index into
        // all of them.
        for (p, core) in self.parts.iter_mut().enumerate() {
            let tx = if p == txp { sender.take() } else { None };
            let rx = if p == rxp { receiver.take() } else { None };
            if reused {
                debug_assert!(core.senders[id].is_none() && core.receivers[id].is_none());
                core.senders[id] = tx;
                core.receivers[id] = rx;
                core.flow_drops[id] = 0;
                core.flow_packets[id] = 0;
            } else {
                core.senders.push(tx);
                core.receivers.push(rx);
                core.flow_drops.push(0);
                core.flow_packets.push(0);
                core.timers.register_flow();
            }
        }
        self.parts[txp].events.schedule_seeded(
            start,
            Event::FlowStart { flow: id },
            event_key(KIND_FLOW_START, id as u64, 0),
        );
        id
    }

    /// Stop an active flow (it stops sending; in-flight packets still drain).
    pub fn stop_flow(&mut self, flow: FlowId) {
        let p = self.shared.node_part[self.shared.specs[flow].src];
        self.parts[p].events.schedule_seeded(
            self.clock,
            Event::FlowStop { flow },
            event_key(KIND_FLOW_STOP, flow as u64, 0),
        );
    }

    // ---- the flow slab ----------------------------------------------------

    /// Retire a finished flow and recycle its id, if the flow is fully
    /// quiescent. Returns `true` when the slot was reclaimed.
    ///
    /// Quiescence requires all of:
    ///
    /// * the flow is [`FlowPhase::Completed`] or [`FlowPhase::Stopped`];
    /// * it has no armed timers (stop/completion cancels them structurally);
    /// * no packet of the flow is in flight anywhere — queued, on the wire,
    ///   or buffered as a boundary message. A trailing ACK still propagating
    ///   back to the sender keeps the flow alive until it is consumed, which
    ///   is what makes recycling safe: a recycled id can never be touched by
    ///   a stray packet of its previous occupant.
    ///
    /// Call this between runs (it takes `&mut self`, so it cannot race an
    /// epoch). Because every event up to the current time has been processed
    /// identically for any `--partitions × --partition-threads`, the retire
    /// decision — and therefore the id-reuse sequence — is partition- and
    /// thread-invariant. Retiring an already-retired flow returns `false`.
    ///
    /// Statistics of a retired flow are gone; harvest [`Self::flow_stats`]
    /// first. [`Self::num_flows`] counts slots (the slab high-water mark),
    /// not flows ever added.
    pub fn try_retire_flow(&mut self, flow: FlowId) -> bool {
        let txp = self.shared.node_part[self.shared.specs[flow].src];
        let rxp = self.shared.node_part[self.shared.specs[flow].dst];
        let Some(sender) = self.parts[txp].senders[flow].as_ref() else {
            return false; // already retired
        };
        let completed = self.parts[rxp].receivers[flow]
            .as_ref()
            .expect("receiver on destination core")
            .completed_at
            .is_some();
        let phase = if completed {
            FlowPhase::Completed
        } else {
            sender.phase
        };
        if !matches!(phase, FlowPhase::Completed | FlowPhase::Stopped) {
            return false;
        }
        if self.parts[txp].timers.pending_count(flow) != 0 {
            return false;
        }
        let in_flight: i64 = self.parts.iter().map(|c| c.flow_packets[flow]).sum();
        debug_assert!(in_flight >= 0, "in-flight packet count went negative");
        if in_flight != 0 {
            return false;
        }
        for core in &mut self.parts {
            core.senders[flow] = None;
            core.receivers[flow] = None;
            core.flow_drops[flow] = 0;
            core.flow_packets[flow] = 0;
            core.timers.reset_flow(flow);
        }
        self.free_flows.push(flow);
        true
    }

    /// Whether `flow`'s slot has been retired (and possibly not yet reused).
    /// The per-flow statistics accessors panic on a retired id.
    pub fn flow_is_retired(&self, flow: FlowId) -> bool {
        let txp = self.shared.node_part[self.shared.specs[flow].src];
        self.parts[txp].senders[flow].is_none()
    }

    /// Number of retired flow slots currently free for reuse.
    pub fn free_flow_slots(&self) -> usize {
        self.free_flows.len()
    }

    /// Packets of `flow` currently in the network (queued, serializing, on
    /// the wire, or buffered at a partition boundary), summed over cores.
    pub fn flow_in_flight_packets(&self, flow: FlowId) -> i64 {
        self.parts.iter().map(|c| c.flow_packets[flow]).sum()
    }

    // ---- impairments ------------------------------------------------------

    /// Schedule a [`LinkChange`] to take effect at `at` (clamped to the
    /// current time). Link changes are coordinator-level sync events: the
    /// simulation runs every partition up to the change's instant, applies
    /// it while all partitions are parked at that barrier (before any
    /// same-instant partition events), then resumes. Impairment schedules
    /// built by `numfabric-workloads` reduce to a sequence of these calls.
    pub fn schedule_link_change(&mut self, at: SimTime, link: LinkId, change: LinkChange) {
        assert!(
            link < self.shared.topo.links().len(),
            "no such link: {link}"
        );
        let order = self.global_order;
        self.global_order += 1;
        self.globals.push(GlobalEvent {
            at: at.max(self.clock),
            order,
            link,
            change,
        });
    }

    /// Seed the impairment streams that randomized [`LinkChange::Loss`] and
    /// [`LinkChange::Jitter`] draws come from — one stream per **link**,
    /// derived via [`derive_link_seed`], so the draw sequence is invariant
    /// under partitioning and threading. Runs that never impair a link
    /// never touch any stream, so the seed is irrelevant to them.
    pub fn set_impairment_seed(&mut self, seed: u64) {
        self.impair_seed = seed;
        for core in &mut self.parts {
            for (l, slot) in core.links.iter_mut().enumerate() {
                if let Some(ls) = slot {
                    ls.rng = derive_link_seed(seed, l);
                }
            }
        }
    }

    /// Whether a link is currently up.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.shared.link_health[link].up
    }

    /// A link's current impairment state.
    pub fn link_health(&self, link: LinkId) -> LinkHealth {
        self.shared.link_health[link]
    }

    /// Change a link's capacity at runtime (used by the bandwidth-function
    /// experiments, where the bottleneck capacity changes mid-run). The
    /// packet currently being serialized keeps its old transmission time;
    /// subsequent packets use the new rate.
    ///
    /// # Panics
    /// Panics if the capacity is not strictly positive.
    pub fn set_link_capacity(&mut self, link: LinkId, capacity_bps: f64) {
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "capacity must be positive"
        );
        self.shared.link_caps[link] = capacity_bps;
        let p = self.shared.link_part[link];
        if let Some(ctrl) = self.parts[p].links[link]
            .as_mut()
            .and_then(|ls| ls.controller.as_mut())
        {
            ctrl.on_capacity_change(capacity_bps);
        }
    }

    /// A link's current capacity in bits per second.
    pub fn link_capacity_bps(&self, link: LinkId) -> f64 {
        self.shared.link_caps[link]
    }

    /// Apply one link change at coordinator level (all partitions parked).
    fn apply_link_change(&mut self, link: LinkId, change: LinkChange) {
        match change {
            LinkChange::Down | LinkChange::DownFwd => {
                if !self.shared.link_health[link].up {
                    return;
                }
                self.shared.link_health[link].up = false;
                // An asymmetric failure dies identically at this link but
                // leaves the reverse twin routable (see `reroute_ecmp_flows`).
                self.shared.link_health[link].asymmetric_down = change == LinkChange::DownFwd;
                // Everything queued behind the failed cable is lost,
                // deterministically (drain order is the discipline's own
                // dequeue order). Packets already propagating are lost at
                // their arrival instant (see `handle_arrival`).
                self.drop_link_backlog(link);
                self.reroute_ecmp_flows();
            }
            LinkChange::Up => {
                if self.shared.link_health[link].up {
                    return;
                }
                self.shared.link_health[link].up = true;
                self.shared.link_health[link].asymmetric_down = false;
                self.reroute_ecmp_flows();
                let p = self.shared.link_part[link];
                try_transmit(&self.shared, &mut self.parts[p], link);
            }
            LinkChange::Speed(capacity_bps) => self.set_link_capacity(link, capacity_bps),
            LinkChange::Loss(probability) => {
                assert!(
                    (0.0..=1.0).contains(&probability),
                    "loss probability out of range: {probability}"
                );
                self.shared.link_health[link].loss = probability;
            }
            LinkChange::Jitter(max_extra) => self.shared.link_health[link].jitter = max_extra,
        }
    }

    /// Drop every packet queued on `link` (data queue and control lane),
    /// with full drop accounting.
    fn drop_link_backlog(&mut self, link: LinkId) {
        let p = self.shared.link_part[link];
        let core = &mut self.parts[p];
        let now = core.clock;
        let mut dropped_flows = Vec::new();
        {
            let ls = core.links[link]
                .as_mut()
                .expect("link state on owning core");
            while let Some(pkt) = ls.control_lane.pop_front() {
                dropped_flows.push(pkt.flow);
            }
            while let Some(pkt) = ls.queue.dequeue(now) {
                dropped_flows.push(pkt.flow);
            }
            ls.stats.packets_dropped += dropped_flows.len() as u64;
        }
        for flow in dropped_flows {
            core.flow_drops[flow] += 1;
            core.flow_packets[flow] -= 1;
        }
    }

    /// Re-select the route of every live ECMP-pinned flow over the links
    /// that survive the current failure set. Flows whose surviving choice
    /// is unchanged keep their route (and their in-flight packets); a
    /// partitioned flow keeps its dead route and stalls until a restore.
    ///
    /// Every rerouted *active* flow is then told via
    /// [`FlowAgent::on_reroute`], with `path_was_lost` reporting whether
    /// its old path (either direction) crossed a downed link — that is the
    /// case in which its in-flight window died with the cable and a purely
    /// ACK-clocked sender must retransmit to restart its clock.
    fn reroute_ecmp_flows(&mut self) {
        let down: std::collections::HashSet<LinkId> = self
            .shared
            .link_health
            .iter()
            .enumerate()
            .filter(|(_, h)| !h.up)
            .map(|(id, _)| id)
            .collect();
        // The route-selection ban set: a symmetric failure bans the whole
        // cable (a flow cannot use a path its ACKs cannot retrace), while an
        // asymmetric `DownFwd` failure bans only the dead direction — the
        // routing plane only learned about the direction that went dark.
        let mut banned = down.clone();
        for &id in &down {
            if self.shared.link_health[id].asymmetric_down {
                continue;
            }
            let spec = &self.shared.topo.links()[id];
            if let Some(twin) = self.shared.topo.link_between(spec.to, spec.from) {
                banned.insert(twin);
            }
        }
        let mut rerouted: Vec<(FlowId, bool)> = Vec::new();
        for flow in 0..self.shared.specs.len() {
            // Retired slots (and slots awaiting reuse) have no endpoints.
            let Some(phase) = self.flow_phase_opt(flow) else {
                continue;
            };
            if !matches!(phase, FlowPhase::Pending | FlowPhase::Active) {
                continue;
            }
            let spec = &self.shared.specs[flow];
            let Some(choice) = spec.ecmp_choice else {
                continue;
            };
            let (src, dst, old) = (spec.src, spec.dst, spec.route);
            let old_reverse = spec.reverse_route;
            let Some(new_route) = self
                .shared
                .topo
                .host_route_avoiding_directed(src, dst, choice, &banned)
            else {
                continue;
            };
            if self.shared.routes.links(old) == new_route.links() {
                continue;
            }
            // Old in-flight and queued packets carry the old interned
            // route and keep following it (dying at the failed hop); the
            // flow's own per-queue state moves to the new path.
            let old_links: Vec<LinkId> = self.shared.routes.links(old).to_vec();
            for &l in &old_links {
                let p = self.shared.link_part[l];
                if let Some(ls) = self.parts[p].links[l].as_mut() {
                    ls.queue.release_flow(flow);
                }
            }
            let path_was_lost = old_links
                .iter()
                .chain(self.shared.routes.links(old_reverse))
                .any(|l| down.contains(l));
            let reverse = self.shared.topo.reverse_route(&new_route);
            let base_rtt =
                self.shared
                    .topo
                    .base_rtt(&new_route, MTU_BYTES as u64, HEADER_BYTES as u64);
            let route_id = self.shared.routes.intern(new_route);
            let reverse_id = self.shared.routes.intern(reverse);
            let spec = &mut self.shared.specs[flow];
            spec.base_rtt = base_rtt;
            spec.route = route_id;
            spec.reverse_route = reverse_id;
            if phase == FlowPhase::Active {
                rerouted.push((flow, path_was_lost));
            }
        }
        for (flow, path_was_lost) in rerouted {
            // The inter-arrival clock at the receiver restarts on the new
            // path: the first post-reroute delivery must not report a gap
            // that straddles the route change.
            let rxp = self.shared.node_part[self.shared.specs[flow].dst];
            if let Some(rx) = self.parts[rxp].receivers[flow].as_mut() {
                rx.last_data_arrival = None;
            }
            let txp = self.shared.node_part[self.shared.specs[flow].src];
            with_agent(&self.shared, &mut self.parts[txp], flow, |agent, ctx| {
                agent.on_reroute(path_was_lost, ctx)
            });
        }
    }

    // ---- run loops --------------------------------------------------------

    /// The instant of the earliest pending coordinator-level link change.
    fn next_global_time(&self) -> Option<SimTime> {
        self.globals.iter().map(|g| g.at).min()
    }

    /// Apply every pending link change scheduled for instant `g`, in
    /// schedule order, with all partitions parked at `g`.
    fn apply_globals_at(&mut self, g: SimTime) {
        let (mut due, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut self.globals)
            .into_iter()
            .partition(|e| e.at == g);
        self.globals = rest;
        due.sort_by_key(|e| e.order);
        for core in &mut self.parts {
            core.clock = g;
        }
        for e in due {
            self.sync_events += 1;
            self.apply_link_change(e.link, e.change);
        }
    }

    /// Run the simulation until (and including) time `until`.
    ///
    /// With multiple partitions the loop runs in **epochs**: each epoch
    /// starts at the earliest pending event time `t` across all partitions,
    /// advances every partition independently through events strictly
    /// before the barrier `t + lookahead`, then exchanges the boundary
    /// messages produced meanwhile. The lookahead (minimum boundary-link
    /// propagation delay) guarantees no boundary message can be due before
    /// the barrier, so each partition's pop order — and every observable
    /// byte — is independent of the partition count and the thread count.
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            match self.next_global_time() {
                Some(g) if g <= until => {
                    self.run_stretch(g, false);
                    self.clock = g;
                    self.apply_globals_at(g);
                }
                _ => {
                    self.run_stretch(until, true);
                    break;
                }
            }
        }
        self.clock = self.clock.max(until);
    }

    /// Run the simulation for `duration` beyond the current time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let until = self.clock + duration;
        self.run_until(until);
    }

    /// Run until no events remain (only sensible for workloads where every
    /// flow has a finite size). Same epoch structure as [`Self::run_until`],
    /// without the time bound.
    pub fn run_to_completion(&mut self) {
        loop {
            match self.next_global_time() {
                Some(g) => {
                    self.run_stretch(g, false);
                    self.clock = g;
                    self.apply_globals_at(g);
                }
                None => {
                    // A far bound used only in comparisons (never added to).
                    let far = SimTime::ZERO + SimDuration::from_nanos(u64::MAX);
                    self.run_stretch(far, true);
                    break;
                }
            }
        }
        let core_max = self.parts.iter().map(|c| c.clock).max();
        if let Some(t) = core_max {
            self.clock = self.clock.max(t);
        }
    }

    /// Run every partition through epochs until all pending work lies
    /// beyond `bound`. A "stretch" is the span between two sync points.
    fn run_stretch(&mut self, bound: SimTime, inclusive: bool) {
        // Boundary traffic produced at the previous sync point (restores
        // re-kicking transmission, reroute-triggered retransmits crossing
        // cuts) must be visible before the first epoch's min is computed.
        self.route_outbound();
        if self.threads > 1 && self.parts.len() > 1 {
            self.run_stretch_threaded(bound, inclusive);
        } else {
            self.run_stretch_inline(bound, inclusive);
        }
    }

    /// Move every core's accumulated outbound bundles into the destination
    /// cores' inboxes.
    fn route_outbound(&mut self) {
        let mut moved: Vec<(usize, OutBundle)> = Vec::new();
        for core in &mut self.parts {
            for (dest, bundle) in core.outbound.iter_mut().enumerate() {
                if !bundle.is_empty() {
                    moved.push((dest, std::mem::take(bundle)));
                }
            }
        }
        for (dest, bundle) in moved {
            self.parts[dest].inbox.extend(bundle.events);
            self.parts[dest].inbox_releases.extend(bundle.releases);
        }
    }

    /// The sequential stretch loop: deliver boundary messages, advance
    /// every partition to the epoch barrier, exchange outbound bundles,
    /// repeat. The threaded path runs the *same* per-core calls, just on
    /// workers — that equivalence is the thread-invariance argument.
    fn run_stretch_inline(&mut self, bound: SimTime, inclusive: bool) {
        loop {
            for core in &mut self.parts {
                deliver_boundary(core);
            }
            let mut t_min: Option<SimTime> = None;
            for core in &mut self.parts {
                if let Some((t, _)) = core.events.peek_key() {
                    t_min = Some(t_min.map_or(t, |m: SimTime| m.min(t)));
                }
            }
            let Some(t) = t_min else {
                break;
            };
            if beyond(t, bound, inclusive) {
                break;
            }
            let barrier = self.lookahead.map(|la| t + la);
            for core in &mut self.parts {
                advance_core(&self.shared, core, barrier, bound, inclusive);
            }
            self.route_outbound();
        }
    }

    /// The threaded stretch loop: long-lived workers each own a contiguous
    /// chunk of partitions; per epoch the coordinator hands every worker a
    /// command (barrier + that chunk's boundary deliveries), the workers
    /// advance their cores concurrently, and replies are merged in worker
    /// order — a deterministic rendezvous, so the merge order never depends
    /// on thread scheduling.
    fn run_stretch_threaded(&mut self, bound: SimTime, inclusive: bool) {
        let nparts = self.parts.len();
        let workers = self.threads.min(nparts);
        let chunk_size = nparts.div_ceil(workers);
        let lookahead = self.lookahead;
        let shared = &self.shared;
        let parts: &mut [PartitionCore] = &mut self.parts;
        // Undelivered boundary traffic per destination partition, held by
        // the coordinator between epochs.
        let mut pending: Vec<OutBundle> = parts
            .iter_mut()
            .map(|core| OutBundle {
                events: std::mem::take(&mut core.inbox),
                releases: std::mem::take(&mut core.inbox_releases),
            })
            .collect();
        let mut next_times: Vec<Option<SimTime>> = parts
            .iter_mut()
            .map(|core| core.events.peek_key().map(|(t, _)| t))
            .collect();
        let part_worker: Vec<usize> = (0..nparts).map(|p| p / chunk_size).collect();
        std::thread::scope(|scope| {
            let mut channels: Vec<(
                std::sync::mpsc::Sender<EpochCmd>,
                std::sync::mpsc::Receiver<EpochReply>,
            )> = Vec::with_capacity(workers);
            let mut rest = parts;
            while !rest.is_empty() {
                let take = chunk_size.min(rest.len());
                let (chunk, tail) = rest.split_at_mut(take);
                rest = tail;
                let (cmd_tx, cmd_rx) = std::sync::mpsc::channel::<EpochCmd>();
                let (reply_tx, reply_rx) = std::sync::mpsc::channel::<EpochReply>();
                channels.push((cmd_tx, reply_rx));
                scope.spawn(move || worker_loop(shared, chunk, cmd_rx, reply_tx));
            }
            loop {
                // The earliest actionable instant: pending wheel heads plus
                // boundary events not yet delivered.
                let mut t_min: Option<SimTime> = None;
                for t in next_times.iter().flatten() {
                    t_min = Some(t_min.map_or(*t, |m: SimTime| m.min(*t)));
                }
                for bundle in &pending {
                    for (at, _, _) in &bundle.events {
                        t_min = Some(t_min.map_or(*at, |m: SimTime| m.min(*at)));
                    }
                }
                let Some(t) = t_min else {
                    break;
                };
                if beyond(t, bound, inclusive) {
                    break;
                }
                let barrier = lookahead.map(|la| t + la);
                let mut deliveries: Vec<Vec<(usize, OutBundle)>> =
                    (0..channels.len()).map(|_| Vec::new()).collect();
                for (p, bundle) in pending.iter_mut().enumerate() {
                    if !bundle.is_empty() {
                        deliveries[part_worker[p]].push((p, std::mem::take(bundle)));
                    }
                }
                for (w, (cmd_tx, _)) in channels.iter().enumerate() {
                    cmd_tx
                        .send(EpochCmd::Epoch {
                            barrier,
                            bound,
                            inclusive,
                            deliveries: std::mem::take(&mut deliveries[w]),
                        })
                        .expect("partition worker exited unexpectedly");
                }
                for (w, (_, reply_rx)) in channels.iter().enumerate() {
                    let reply = reply_rx
                        .recv()
                        .unwrap_or_else(|_| panic!("partition worker {w} panicked"));
                    for (p, next) in reply.next_times {
                        next_times[p] = next;
                    }
                    for (dest, bundle) in reply.outbound {
                        pending[dest].events.extend(bundle.events);
                        pending[dest].releases.extend(bundle.releases);
                    }
                }
            }
            for (cmd_tx, _) in &channels {
                let _ = cmd_tx.send(EpochCmd::Done);
            }
        });
        // Re-deposit boundary traffic that lies beyond the bound for the
        // next stretch; losing it here would silently drop packets.
        for (p, bundle) in pending.into_iter().enumerate() {
            self.parts[p].inbox.extend(bundle.events);
            self.parts[p].inbox_releases.extend(bundle.releases);
        }
    }

    // ---- statistics -------------------------------------------------------

    /// Number of flow *slots* allocated so far — the slab's high-water mark
    /// of concurrently live flows, not the count of flows ever added
    /// (retired slots are recycled by [`Self::add_flow`]).
    pub fn num_flows(&self) -> usize {
        self.shared.specs.len()
    }

    /// A flow's static description.
    pub fn flow_spec(&self, flow: FlowId) -> &FlowSpec {
        &self.shared.specs[flow]
    }

    fn sender(&self, flow: FlowId) -> &SenderState {
        let p = self.shared.node_part[self.shared.specs[flow].src];
        self.parts[p].senders[flow]
            .as_ref()
            .expect("sender on source core")
    }

    fn receiver(&self, flow: FlowId) -> &ReceiverState {
        let p = self.shared.node_part[self.shared.specs[flow].dst];
        self.parts[p].receivers[flow]
            .as_ref()
            .expect("receiver on destination core")
    }

    /// A flow's counters, assembled from its sender and receiver endpoints
    /// plus per-partition drop deltas.
    pub fn flow_stats(&self, flow: FlowId) -> FlowStats {
        let tx = self.sender(flow);
        let rx = self.receiver(flow);
        FlowStats {
            bytes_sent: tx.bytes_sent,
            bytes_acked: tx.bytes_acked,
            bytes_delivered: rx.bytes_delivered,
            packets_sent: tx.packets_sent,
            packets_delivered: rx.packets_delivered,
            packets_dropped: self.parts.iter().map(|c| c.flow_drops[flow]).sum(),
            started_at: tx.started_at,
            completed_at: rx.completed_at,
        }
    }

    /// A flow's lifecycle phase: completed once the receiver has taken
    /// delivery of the full size, otherwise whatever the sender says.
    /// Panics on a retired flow id (see [`Self::try_retire_flow`]).
    pub fn flow_phase(&self, flow: FlowId) -> FlowPhase {
        if self.receiver(flow).completed_at.is_some() {
            FlowPhase::Completed
        } else {
            self.sender(flow).phase
        }
    }

    /// [`Self::flow_phase`], returning `None` for a retired flow slot.
    fn flow_phase_opt(&self, flow: FlowId) -> Option<FlowPhase> {
        let txp = self.shared.node_part[self.shared.specs[flow].src];
        let sender = self.parts[txp].senders[flow].as_ref()?;
        let rxp = self.shared.node_part[self.shared.specs[flow].dst];
        let completed = self.parts[rxp].receivers[flow]
            .as_ref()
            .expect("receiver on destination core")
            .completed_at
            .is_some();
        Some(if completed {
            FlowPhase::Completed
        } else {
            sender.phase
        })
    }

    /// The destination-side EWMA rate estimate for a flow, in bits/s.
    pub fn flow_rate_estimate(&self, flow: FlowId) -> f64 {
        self.receiver(flow).tracer.rate_bps(self.clock)
    }

    /// Ids of flows currently in the [`FlowPhase::Active`] phase (retired
    /// slots are skipped).
    pub fn active_flows(&self) -> Vec<FlowId> {
        (0..self.shared.specs.len())
            .filter(|&f| self.flow_phase_opt(f) == Some(FlowPhase::Active))
            .collect()
    }

    /// Counters for a link. Backlog counts include the control lane;
    /// arrival-side drops charged by other partitions are summed in.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        let p = self.shared.link_part[link];
        let ls = self.parts[p].links[link]
            .as_ref()
            .expect("link state on owning core");
        let lane_bytes: usize = ls
            .control_lane
            .iter()
            .map(|pk| pk.wire_bytes as usize)
            .sum();
        let arrival_drops: u64 = self.parts.iter().map(|c| c.link_drops[link]).sum();
        LinkStats {
            packets_dropped: ls.stats.packets_dropped + arrival_drops,
            queue_bytes: ls.queue.backlog_bytes() + lane_bytes,
            queue_packets: ls.queue.backlog_packets() + ls.control_lane.len(),
            ..ls.stats
        }
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.shared.topo.links().len()
    }

    /// Total number of events dispatched so far, coordinator-level link
    /// changes included (the `event_core` benchmark divides this by wall
    /// time to report events/sec).
    pub fn events_processed(&self) -> u64 {
        self.sync_events + self.parts.iter().map(|c| c.events_processed).sum::<u64>()
    }

    /// Number of events currently pending across every partition's wheel,
    /// boundary mailboxes, and the coordinator's link-change schedule.
    /// Structurally cancelled timers (see [`AgentCtx::cancel_timer`]) do
    /// not count.
    pub fn pending_events(&self) -> usize {
        self.globals.len()
            + self
                .parts
                .iter()
                .map(|c| {
                    c.events.len()
                        + c.inbox.len()
                        + c.outbound.iter().map(|b| b.events.len()).sum::<usize>()
                })
                .sum::<usize>()
    }

    /// Number of armed, un-fired timers of `flow`. Stopping or completing a
    /// flow cancels all of them, so this drops to zero structurally — the
    /// regression surface for the stale-RTX-timer bug.
    pub fn pending_timer_count(&self, flow: FlowId) -> usize {
        let p = self.shared.node_part[self.shared.specs[flow].src];
        self.parts[p].timers.pending_count(flow)
    }

    /// Choose the dispatch strategy: batched same-timestamp dispatch (the
    /// default, faster) or the per-event reference path. The two are
    /// bit-identical by contract — every report byte and event trace is the
    /// same either way — which the differential tests assert by running
    /// both. Safe to change at any time.
    pub fn set_batch_dispatch(&mut self, enabled: bool) {
        self.batch_dispatch = enabled;
        for core in &mut self.parts {
            core.batch_dispatch = enabled;
        }
    }

    /// Whether batched same-timestamp dispatch is active.
    pub fn batch_dispatch(&self) -> bool {
        self.batch_dispatch
    }

    /// Record every handled event as a `(time, key)` pair, per partition —
    /// the conformance trace the determinism proptests compare across
    /// partition and thread counts. Clears any previously recorded trace.
    pub fn set_event_trace(&mut self, enabled: bool) {
        self.trace_enabled = enabled;
        for core in &mut self.parts {
            core.trace = enabled.then(Vec::new);
        }
    }

    /// Take the per-partition `(time, key)` traces recorded since
    /// [`Self::set_event_trace`] was enabled (empty for partitions that
    /// recorded nothing, or when tracing is off).
    pub fn take_event_traces(&mut self) -> Vec<Vec<(SimTime, u64)>> {
        self.parts
            .iter_mut()
            .map(|c| c.trace.as_mut().map(std::mem::take).unwrap_or_default())
            .collect()
    }
}

/// The partition that owns (handles events of) `event`: arrivals belong to
/// the receiving end of their link, link-scoped events to the transmitting
/// end, and flow-scoped events to the source host.
fn event_partition(shared: &Shared, event: &Event) -> usize {
    match event {
        Event::Arrival { link, .. } => shared.node_part[shared.topo.links()[*link].to],
        Event::TransmitComplete { link }
        | Event::LinkTimer { link, .. }
        | Event::LinkChange { link, .. } => shared.link_part[*link],
        Event::FlowStart { flow } | Event::FlowStop { flow } | Event::FlowTimer { flow, .. } => {
            shared.node_part[shared.specs[*flow].src]
        }
    }
}

// ---- the worker protocol --------------------------------------------------

/// One epoch's worth of work for a worker: the barrier, the stretch bound,
/// and the boundary deliveries addressed to the worker's partitions.
enum EpochCmd {
    Epoch {
        barrier: Option<SimTime>,
        bound: SimTime,
        inclusive: bool,
        deliveries: Vec<(usize, OutBundle)>,
    },
    Done,
}

/// A worker's report after one epoch: each owned partition's next pending
/// event time, and the boundary traffic its partitions produced.
struct EpochReply {
    next_times: Vec<(usize, Option<SimTime>)>,
    outbound: Vec<(usize, OutBundle)>,
}

/// A long-lived epoch worker: owns a contiguous chunk of partition cores
/// for the duration of one stretch and advances them on command. Runs the
/// exact same per-core calls as the inline loop.
fn worker_loop(
    shared: &Shared,
    chunk: &mut [PartitionCore],
    cmds: std::sync::mpsc::Receiver<EpochCmd>,
    replies: std::sync::mpsc::Sender<EpochReply>,
) {
    let base = chunk[0].index;
    while let Ok(cmd) = cmds.recv() {
        match cmd {
            EpochCmd::Done => break,
            EpochCmd::Epoch {
                barrier,
                bound,
                inclusive,
                deliveries,
            } => {
                for (part, bundle) in deliveries {
                    let core = &mut chunk[part - base];
                    core.inbox.extend(bundle.events);
                    core.inbox_releases.extend(bundle.releases);
                }
                let mut next_times = Vec::with_capacity(chunk.len());
                let mut outbound: Vec<(usize, OutBundle)> = Vec::new();
                for core in chunk.iter_mut() {
                    deliver_boundary(core);
                    let next = advance_core(shared, core, barrier, bound, inclusive);
                    next_times.push((core.index, next));
                    for (dest, bundle) in core.outbound.iter_mut().enumerate() {
                        if !bundle.is_empty() {
                            outbound.push((dest, std::mem::take(bundle)));
                        }
                    }
                }
                if replies
                    .send(EpochReply {
                        next_times,
                        outbound,
                    })
                    .is_err()
                {
                    break;
                }
            }
        }
    }
}

// ---- the agent-facing API -------------------------------------------------

/// The interface through which a [`FlowAgent`] interacts with the network
/// during one of its callbacks. It carries exactly the capability an epoch
/// grants: read access to the shared tables and mutable access to the
/// partition the flow's sender lives on — which is why agent code can run
/// on a worker thread without further ceremony.
pub struct AgentCtx<'a> {
    shared: &'a Shared,
    core: &'a mut PartitionCore,
    flow: FlowId,
}

impl AgentCtx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.core.clock
    }

    /// The flow this context belongs to.
    pub fn flow_id(&self) -> FlowId {
        self.flow
    }

    /// The flow's static description.
    pub fn spec(&self) -> &FlowSpec {
        &self.shared.specs[self.flow]
    }

    fn sender(&self) -> &SenderState {
        self.core.senders[self.flow]
            .as_ref()
            .expect("agent runs on its sender's core")
    }

    fn sender_mut(&mut self) -> &mut SenderState {
        self.core.senders[self.flow]
            .as_mut()
            .expect("agent runs on its sender's core")
    }

    /// Payload bytes not yet handed to the network (`None` for long-running
    /// flows).
    pub fn remaining_bytes(&self) -> Option<u64> {
        let sent = self.sender().bytes_sent;
        self.shared.specs[self.flow]
            .size_bytes
            .map(|s| s.saturating_sub(sent))
    }

    /// The highest cumulative byte count acknowledged so far.
    pub fn bytes_acked(&self) -> u64 {
        self.sender().bytes_acked
    }

    /// Payload bytes handed to the network so far.
    pub fn bytes_sent(&self) -> u64 {
        self.sender().bytes_sent
    }

    /// Rewind the sent-bytes high-water mark to `to` (typically the highest
    /// cumulative ACK) ahead of a go-back-N retransmission, so that
    /// [`Self::remaining_bytes`] counts the lost tail as still owed rather
    /// than treating the dead transmission as spent. A `to` at or beyond
    /// the current mark is a no-op.
    pub fn rewind_sent(&mut self, to: u64) {
        let sender = self.sender_mut();
        sender.bytes_sent = sender.bytes_sent.min(to);
    }

    /// The flow's forward route.
    pub fn route(&self) -> &Route {
        self.shared.routes.get(self.shared.specs[self.flow].route)
    }

    /// Capacity of the flow's first-hop (host NIC) link, in bits/s.
    pub fn first_hop_capacity_bps(&self) -> f64 {
        let first = self.shared.routes.links(self.shared.specs[self.flow].route)[0];
        self.shared.link_caps[first]
    }

    /// The smallest link capacity along the flow's path, in bits/s.
    pub fn bottleneck_capacity_bps(&self) -> f64 {
        self.shared
            .routes
            .links(self.shared.specs[self.flow].route)
            .iter()
            .map(|&l| self.shared.link_caps[l])
            .fold(f64::INFINITY, f64::min)
    }

    /// The flow's base (empty-queue) RTT.
    pub fn base_rtt(&self) -> SimDuration {
        self.shared.specs[self.flow].base_rtt
    }

    /// Send a data packet of `payload_bytes` starting at byte offset `seq`,
    /// customizing the header with `modify`. Returns the wire size sent.
    pub fn send_data(
        &mut self,
        seq: SeqNo,
        payload_bytes: u32,
        modify: impl FnOnce(&mut PacketHeader),
    ) -> u32 {
        let route = self.shared.specs[self.flow].route;
        let mut packet = Packet::data(self.flow, seq, payload_bytes, route);
        packet.header.sent_time = self.core.clock;
        modify(&mut packet.header);
        let wire = packet.wire_bytes;
        {
            let sender = self.sender_mut();
            sender.bytes_sent += payload_bytes as u64;
            sender.packets_sent += 1;
        }
        self.core.flow_packets[self.flow] += 1;
        let first = self.shared.routes.links(route)[0];
        enqueue_on_link(self.shared, self.core, first, packet);
        wire
    }

    /// Arrange for [`FlowAgent::on_timer`] to be called with `tag` after
    /// `delay`. The returned [`TimerHandle`] can be kept to
    /// [`Self::cancel_timer`] the callback before it fires; when the flow
    /// stops or completes, every outstanding timer is cancelled
    /// automatically.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerHandle {
        // Flow-timer keys must be unique (the cancellation set is keyed by
        // seq), so each arm draws from the sender's monotone counter —
        // per-flow state, hence partition- and thread-invariant.
        let arms = {
            let sender = self.sender_mut();
            let a = sender.timer_arms;
            sender.timer_arms += 1;
            a
        };
        let seq = event_key(KIND_FLOW_TIMER, self.flow as u64, arms);
        let now = self.core.clock;
        let core = &mut *self.core;
        core.timers
            .arm_seeded(&mut core.events, now, seq, self.flow, delay, tag)
    }

    /// Cancel a timer previously armed with [`Self::set_timer`]. Returns
    /// `true` if the timer was still pending, `false` if it already fired
    /// or was already cancelled.
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        let core = &mut *self.core;
        core.timers.cancel(&mut core.events, handle)
    }

    /// Number of this flow's armed, un-fired timers.
    pub fn pending_timers(&self) -> usize {
        self.core.timers.pending_count(self.flow)
    }
}

// The concurrency contract, pinned at compile time. Two layers:
//
// * A `Network` owns its entire simulation (topology, route arena, queues,
//   agents, controllers, event wheels, timers — no `Rc`, no interior
//   sharing), so a sweep worker thread can own one outright.
// * Inside a network, an epoch worker holds `&mut PartitionCore` (must be
//   `Send`: it moves to the worker for the stretch) and `&Shared` (must be
//   `Sync`: every worker reads it concurrently). `FlowAgent`,
//   `QueueDiscipline` and `LinkController` carry `Send` bounds for exactly
//   this reason; if a future change smuggles in a non-`Send` field, this
//   is the line that fails to compile.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<Network>();
    assert_send::<PartitionCore>();
    assert_sync::<Shared>();
    assert_send::<EpochCmd>();
    assert_send::<EpochReply>();
    assert_send::<EventQueue>();
    assert_send::<crate::timer::TimerService>();
    assert_send::<Topology>();
    assert_send::<crate::routes::RouteTable>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::DropTailFifo;
    use crate::reference::SimpleWindowAgent;
    use crate::topology::{LeafSpineConfig, NodeKind};
    use crate::transport::NullController;

    fn small_net() -> Network {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        Network::new(topo, |_| Box::new(DropTailFifo::with_default_buffer()))
    }

    #[test]
    fn single_flow_completes_and_fct_is_sensible() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let size = 150_000u64; // 100 MTU payloads
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            Some(size),
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(20)),
        );
        net.run_until(SimTime::from_millis(50));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
        let stats = net.flow_stats(flow);
        // The 150 kB flow is an exact number of full payloads, so delivery
        // is byte-exact.
        assert_eq!(stats.bytes_delivered, size);
        let fct = stats.fct().expect("completed flow has an FCT");
        // 150 KB at 10 Gbps minimum is 120 µs plus propagation; the window of
        // 20 packets never stalls the 16 µs-RTT path, so it finishes quickly.
        assert!(fct >= SimDuration::from_micros(120), "fct = {fct}");
        assert!(fct < SimDuration::from_millis(2), "fct = {fct}");
        assert!(stats.packets_dropped == 0);
    }

    #[test]
    fn two_flows_share_a_bottleneck_roughly_equally() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        // Both flows converge on the same destination host link.
        let f0 = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(8)),
        );
        let f1 = net.add_flow(
            hosts[1],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(8)),
        );
        net.run_until(SimTime::from_millis(10));
        let r0 = net.flow_rate_estimate(f0);
        let r1 = net.flow_rate_estimate(f1);
        let total = r0 + r1;
        assert!(total > 8e9, "bottleneck underutilized: {total}");
        assert!(total < 10.5e9, "bottleneck oversubscribed: {total}");
        assert!((r0 - r1).abs() / total < 0.2, "unfair split {r0} vs {r1}");
    }

    #[test]
    fn flows_count_drops_when_buffers_are_tiny() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let mut net = Network::new(topo, |_| Box::new(DropTailFifo::new(4 * 1500)));
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        for src in 0..4 {
            net.add_flow(
                hosts[src],
                hosts[5],
                None,
                SimTime::ZERO,
                0,
                None,
                Box::new(SimpleWindowAgent::new(64)),
            );
        }
        net.run_until(SimTime::from_millis(2));
        let dropped: u64 = (0..net.num_flows())
            .map(|f| net.flow_stats(f).packets_dropped)
            .sum();
        assert!(dropped > 0, "expected drops with 4-packet buffers");
    }

    #[test]
    fn stopping_a_flow_stops_its_traffic() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(8)),
        );
        net.run_until(SimTime::from_millis(1));
        assert!(net.flow_rate_estimate(flow) > 1e9);
        net.stop_flow(flow);
        net.run_until(SimTime::from_millis(1) + SimDuration::from_micros(100));
        let sent_at_stop = net.flow_stats(flow).packets_sent;
        net.run_until(SimTime::from_millis(3));
        assert_eq!(net.flow_phase(flow), FlowPhase::Stopped);
        assert_eq!(net.flow_stats(flow).packets_sent, sent_at_stop);
        // The rate estimate decays once traffic stops.
        assert!(net.flow_rate_estimate(flow) < 1e9);
    }

    #[test]
    fn pending_flows_start_at_their_start_time() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            Some(15_000),
            SimTime::from_millis(1),
            0,
            None,
            Box::new(SimpleWindowAgent::new(8)),
        );
        net.run_until(SimTime::from_micros(500));
        assert_eq!(net.flow_phase(flow), FlowPhase::Pending);
        assert_eq!(net.flow_stats(flow).packets_sent, 0);
        net.run_until(SimTime::from_millis(5));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
        assert_eq!(
            net.flow_stats(flow).started_at,
            Some(SimTime::from_millis(1))
        );
    }

    #[test]
    fn link_stats_reflect_traffic() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            Some(150_000),
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(16)),
        );
        net.run_until(SimTime::from_millis(20));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
        let first_link = net.route(net.flow_spec(flow).route).links()[0];
        let stats = net.link_stats(first_link);
        assert!(stats.packets_transmitted >= 100);
        assert!(stats.bytes_transmitted >= 150_000);
        assert_eq!(stats.queue_packets, 0);
    }

    #[test]
    fn null_controller_and_all_links_installation() {
        let mut net = small_net();
        net.set_all_link_controllers(|_, _| Box::new(NullController));
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[1],
            Some(15_000),
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(4)),
        );
        net.run_until(SimTime::from_millis(5));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
    }

    #[test]
    fn intra_rack_flows_avoid_the_spine() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[1],
            Some(15_000),
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(4)),
        );
        net.run_until(SimTime::from_millis(5));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
        // No spine link should have carried data packets.
        let topo = net.topology().clone();
        for (id, spec) in topo.links().iter().enumerate() {
            let from_spine = topo.nodes()[spec.from].kind == NodeKind::Spine;
            let to_spine = topo.nodes()[spec.to].kind == NodeKind::Spine;
            if from_spine || to_spine {
                assert_eq!(net.link_stats(id).packets_transmitted, 0);
            }
        }
    }

    /// Arms one timer on start and counts how often it fires — the probe
    /// for structural timer cancellation.
    struct TimerProbe {
        delay: SimDuration,
        fired: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl FlowAgent for TimerProbe {
        fn on_start(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.set_timer(self.delay, 7);
        }
        fn on_ack(&mut self, _packet: &Packet, _ctx: &mut AgentCtx<'_>) {}
        fn on_timer(&mut self, tag: u64, _ctx: &mut AgentCtx<'_>) {
            assert_eq!(tag, 7);
            self.fired.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
    }

    #[test]
    fn stopping_a_flow_cancels_its_pending_timers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let fired = Arc::new(AtomicUsize::new(0));
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(TimerProbe {
                delay: SimDuration::from_micros(500),
                fired: fired.clone(),
            }),
        );
        net.run_until(SimTime::from_micros(100));
        assert_eq!(net.pending_timer_count(flow), 1);
        let pending_with_timer = net.pending_events();
        net.stop_flow(flow);
        net.run_until(SimTime::from_micros(200));
        // The stop structurally removed the timer: it no longer counts as a
        // pending event and never dispatches.
        assert_eq!(net.pending_timer_count(flow), 0);
        assert!(net.pending_events() < pending_with_timer);
        net.run_until(SimTime::from_millis(2));
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        assert_eq!(net.flow_phase(flow), FlowPhase::Stopped);
    }

    #[test]
    fn unstopped_timers_still_fire_and_can_be_cancelled_by_handle() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let fired = Arc::new(AtomicUsize::new(0));
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(TimerProbe {
                delay: SimDuration::from_micros(500),
                fired: fired.clone(),
            }),
        );
        net.run_until(SimTime::from_millis(1));
        assert_eq!(fired.load(Ordering::SeqCst), 1, "positive control");
        assert_eq!(net.pending_timer_count(flow), 0);
    }

    /// The leaf0 -> spine0 uplink of the small test fabric.
    fn uplink(net: &Network, spine: usize) -> LinkId {
        let topo = net.topology();
        let leaf0 = topo
            .nodes()
            .iter()
            .position(|n| n.kind == NodeKind::Leaf)
            .unwrap();
        let spine0 = topo
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == NodeKind::Spine)
            .map(|(id, _)| id)
            .nth(spine)
            .unwrap();
        topo.link_between(leaf0, spine0).unwrap()
    }

    #[test]
    fn failing_a_link_drops_its_backlog_and_blocks_traffic() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        // Pin the flow on spine 0 with an explicit route so the failure
        // cannot be routed around.
        let route = net.topology().host_route(hosts[0], hosts[4], 0);
        let flow = net.add_flow_on_route(
            hosts[0],
            hosts[4],
            route,
            None,
            SimTime::ZERO,
            None,
            Box::new(SimpleWindowAgent::new(32)),
        );
        net.run_until(SimTime::from_millis(1));
        let link = uplink(&net, 0);
        assert!(net.link_is_up(link));
        let sent_before = net.flow_stats(flow).packets_sent;
        assert!(sent_before > 0);
        net.schedule_link_change(SimTime::from_millis(1), link, LinkChange::Down);
        net.run_until(SimTime::from_millis(4));
        assert!(!net.link_is_up(link));
        // The window drains into the dead link and the flow wedges: drops
        // are accounted and delivery stops growing.
        assert!(net.flow_stats(flow).packets_dropped > 0);
        let delivered = net.flow_stats(flow).bytes_delivered;
        net.run_until(SimTime::from_millis(8));
        assert_eq!(net.flow_stats(flow).bytes_delivered, delivered);
    }

    #[test]
    fn ecmp_pinned_flows_reroute_around_a_failure_and_return_on_restore() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0, // ECMP pin on spine 0
            None,
            Box::new(SimpleWindowAgent::new(16)),
        );
        let original = net.flow_spec(flow).route;
        let failed = uplink(&net, 0);
        net.schedule_link_change(SimTime::from_millis(1), failed, LinkChange::Down);
        net.schedule_link_change(SimTime::from_millis(3), failed, LinkChange::Up);
        net.run_until(SimTime::from_millis(2));
        let detour = net.flow_spec(flow).route;
        assert_ne!(detour, original, "failure must move the flow off spine 0");
        assert!(!net.route(detour).links().contains(&failed));
        let delivered_at_2ms = net.flow_stats(flow).bytes_delivered;
        net.run_until(SimTime::from_millis(4));
        // The restore puts the ECMP choice back on its original path, and
        // the flow kept making progress across the whole flap.
        assert_eq!(net.flow_spec(flow).route, original);
        assert!(net.flow_stats(flow).bytes_delivered > delivered_at_2ms);
    }

    #[test]
    fn down_fwd_reroutes_only_the_dead_direction() {
        // Two ECMP-pinned flows crossing the same cable in opposite
        // directions: h0 -> h4 climbs leaf0 -> spine0, h4 -> h0 descends
        // spine0 -> leaf0 (the twin). An asymmetric failure of the uplink
        // must move only the climbing flow; a symmetric one moves both.
        let run = |change: LinkChange| {
            let mut net = small_net();
            let hosts: Vec<_> = net.topology().hosts().to_vec();
            let fwd_flow = net.add_flow(
                hosts[0],
                hosts[4],
                None,
                SimTime::ZERO,
                0,
                None,
                Box::new(SimpleWindowAgent::new(16)),
            );
            let rev_flow = net.add_flow(
                hosts[4],
                hosts[0],
                None,
                SimTime::ZERO,
                0,
                None,
                Box::new(SimpleWindowAgent::new(16)),
            );
            let dead = uplink(&net, 0);
            let fwd_route = net.flow_spec(fwd_flow).route;
            let rev_route = net.flow_spec(rev_flow).route;
            net.schedule_link_change(SimTime::from_millis(1), dead, change);
            net.run_until(SimTime::from_millis(2));
            assert!(!net.link_is_up(dead));
            let fwd_moved = net.flow_spec(fwd_flow).route != fwd_route;
            let rev_moved = net.flow_spec(rev_flow).route != rev_route;
            assert!(fwd_moved, "the dead direction is always avoided");
            assert!(!net
                .route(net.flow_spec(fwd_flow).route)
                .links()
                .contains(&dead));
            rev_moved
        };
        assert!(
            !run(LinkChange::DownFwd),
            "down-fwd must leave the live twin direction routable"
        );
        assert!(
            run(LinkChange::Down),
            "a symmetric down bans the whole cable"
        );
    }

    #[test]
    fn wire_loss_drops_packets_deterministically_per_seed() {
        let run = |seed: u64| {
            let mut net = small_net();
            net.set_impairment_seed(seed);
            let hosts: Vec<_> = net.topology().hosts().to_vec();
            let link = uplink(&net, 0);
            net.schedule_link_change(SimTime::ZERO, link, LinkChange::Loss(0.2));
            let route = net.topology().host_route(hosts[0], hosts[4], 0);
            let flow = net.add_flow_on_route(
                hosts[0],
                hosts[4],
                route,
                None,
                SimTime::ZERO,
                None,
                Box::new(SimpleWindowAgent::new(32)),
            );
            net.run_until(SimTime::from_millis(2));
            let stats = net.flow_stats(flow);
            (stats.packets_dropped, stats.bytes_delivered)
        };
        let (dropped, delivered) = run(7);
        assert!(dropped > 0, "20% wire loss must drop something");
        assert!(delivered > 0, "most packets still get through");
        assert_eq!(run(7), (dropped, delivered), "same seed, same losses");
        assert_ne!(run(8), (dropped, delivered), "loss pattern follows seed");
    }

    #[test]
    fn jitter_delays_but_does_not_drop() {
        let mut net = small_net();
        net.set_impairment_seed(1);
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let link = uplink(&net, 0);
        net.schedule_link_change(
            SimTime::ZERO,
            link,
            LinkChange::Jitter(SimDuration::from_micros(20)),
        );
        let route = net.topology().host_route(hosts[0], hosts[4], 0);
        let flow = net.add_flow_on_route(
            hosts[0],
            hosts[4],
            route,
            Some(150_000),
            SimTime::ZERO,
            None,
            Box::new(SimpleWindowAgent::new(16)),
        );
        net.run_until(SimTime::from_millis(20));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
        assert_eq!(net.flow_stats(flow).packets_dropped, 0);
    }

    #[test]
    fn speed_change_event_matches_direct_capacity_change() {
        let mut net = small_net();
        let link = uplink(&net, 0);
        net.schedule_link_change(SimTime::from_micros(10), link, LinkChange::Speed(1e9));
        net.run_until(SimTime::from_micros(20));
        assert_eq!(net.link_capacity_bps(link), 1e9);
    }

    #[test]
    fn acks_ride_the_control_lane_past_a_data_backlog() {
        // Saturate h0 -> h4 with a big window, then check that the reverse
        // direction's ACK-bearing links report no control-lane induced
        // drops and the flow's ACK clock keeps running: bytes_acked tracks
        // bytes_delivered closely even under full forward queues.
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(64)),
        );
        net.run_until(SimTime::from_millis(4));
        let stats = net.flow_stats(flow);
        assert!(stats.bytes_delivered > 0);
        // With a strict-priority control lane the ACK path adds at most one
        // serialization per hop, so the ACK horizon hugs delivery.
        let lag = stats.bytes_delivered.saturating_sub(stats.bytes_acked);
        assert!(
            lag <= 16 * 1460,
            "ACKs lag delivery by {lag} bytes — control lane not serving"
        );
    }

    #[test]
    fn determinism_same_inputs_same_outputs() {
        let run = || {
            let mut net = small_net();
            let hosts: Vec<_> = net.topology().hosts().to_vec();
            for i in 0..4 {
                net.add_flow(
                    hosts[i],
                    hosts[7 - i],
                    Some(50_000 + i as u64 * 10_000),
                    SimTime::from_micros(i as u64 * 10),
                    i,
                    None,
                    Box::new(SimpleWindowAgent::new(8)),
                );
            }
            net.run_until(SimTime::from_millis(10));
            (0..net.num_flows())
                .map(|f| {
                    (
                        net.flow_stats(f).packets_sent,
                        net.flow_stats(f).fct().map(|d| d.as_nanos()),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    /// A full cross-rack report: every flow's counters plus FCT, the
    /// regression surface for partition/thread invariance.
    fn partitioned_report(partitions: usize, threads: usize) -> Vec<(u64, u64, u64, Option<u64>)> {
        let mut net = small_net();
        net.set_partitions(partitions);
        net.set_partition_threads(threads);
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        for i in 0..4 {
            net.add_flow(
                hosts[i],
                hosts[7 - i],
                Some(50_000 + i as u64 * 10_000),
                SimTime::from_micros(i as u64 * 10),
                i,
                None,
                Box::new(SimpleWindowAgent::new(8)),
            );
        }
        net.run_until(SimTime::from_millis(10));
        (0..net.num_flows())
            .map(|f| {
                let s = net.flow_stats(f);
                (
                    s.packets_sent,
                    s.bytes_delivered,
                    s.packets_dropped,
                    s.fct().map(|d| d.as_nanos()),
                )
            })
            .collect()
    }

    #[test]
    fn threaded_partitioned_run_matches_sequential() {
        let base = partitioned_report(1, 1);
        for partitions in [2, 4] {
            for threads in [1, 2, 4] {
                assert_eq!(
                    partitioned_report(partitions, threads),
                    base,
                    "report differs at partitions={partitions} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn impaired_draws_are_partition_and_thread_invariant() {
        let run = |partitions: usize, threads: usize| {
            let mut net = small_net();
            net.set_partitions(partitions);
            net.set_partition_threads(threads);
            net.set_impairment_seed(9);
            let hosts: Vec<_> = net.topology().hosts().to_vec();
            let link = uplink(&net, 0);
            net.schedule_link_change(SimTime::ZERO, link, LinkChange::Loss(0.1));
            net.schedule_link_change(
                SimTime::ZERO,
                link,
                LinkChange::Jitter(SimDuration::from_micros(5)),
            );
            let route = net.topology().host_route(hosts[0], hosts[4], 0);
            let flow = net.add_flow_on_route(
                hosts[0],
                hosts[4],
                route,
                None,
                SimTime::ZERO,
                None,
                Box::new(SimpleWindowAgent::new(32)),
            );
            net.run_until(SimTime::from_millis(2));
            let stats = net.flow_stats(flow);
            (
                stats.packets_dropped,
                stats.bytes_delivered,
                stats.bytes_acked,
            )
        };
        let base = run(1, 1);
        assert!(base.0 > 0, "10% wire loss must drop something");
        for (partitions, threads) in [(2, 1), (2, 2), (4, 2), (4, 4)] {
            assert_eq!(
                run(partitions, threads),
                base,
                "impaired draws differ at partitions={partitions} threads={threads}"
            );
        }
    }
}

//! Small reporting helpers shared by the figure-regeneration binaries:
//! percentiles, CDFs, size bins and aligned-column table printing.

use numfabric_sim::SimDuration;

/// The flow-size bins of Fig. 5, in bandwidth-delay products.
pub const FIG5_BINS: [(f64, f64); 5] = [
    (0.0, 5.0),
    (5.0, 10.0),
    (10.0, 100.0),
    (100.0, 1_000.0),
    (1_000.0, 10_000.0),
];

/// Human-readable labels for [`FIG5_BINS`].
pub const FIG5_BIN_LABELS: [&str; 5] = ["(0-5)", "(5-10)", "(10-100)", "(100-1K)", "(1K-10K)"];

/// The q-quantile (0 ≤ q ≤ 1) of a sample, by nearest-rank interpolation.
/// Returns `None` for an empty sample.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((v.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    Some(v[idx])
}

/// Arithmetic mean; `None` for an empty sample.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Box-plot style summary (25th, 50th, 75th percentiles).
pub fn quartiles(values: &[f64]) -> Option<(f64, f64, f64)> {
    Some((
        percentile(values, 0.25)?,
        percentile(values, 0.50)?,
        percentile(values, 0.75)?,
    ))
}

/// Empirical CDF points `(value, cumulative probability)` at each sample.
pub fn cdf_points(values: &[f64]) -> Vec<(f64, f64)> {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n as f64))
        .collect()
}

/// Print a CDF as rows `value  probability`, downsampled to at most
/// `max_rows` rows.
pub fn print_cdf(label: &str, values: &[f64], unit: &str, max_rows: usize) {
    let points = cdf_points(values);
    if points.is_empty() {
        println!("{label}: no samples");
        return;
    }
    println!("{label} ({} samples):", points.len());
    let step = (points.len() / max_rows.max(1)).max(1);
    for (i, (x, p)) in points.iter().enumerate() {
        if i % step == 0 || i == points.len() - 1 {
            println!("  {x:>12.1} {unit}   P = {p:.3}");
        }
    }
}

/// Convert optional convergence times to milliseconds, dropping events that
/// never converged.
pub fn times_ms(times: &[Option<SimDuration>]) -> Vec<f64> {
    times
        .iter()
        .filter_map(|t| t.map(|d| d.as_secs_f64() * 1e3))
        .collect()
}

/// Which Fig. 5 bin a flow of `size_bdp` bandwidth-delay products falls into.
pub fn fig5_bin(size_bdp: f64) -> Option<usize> {
    FIG5_BINS
        .iter()
        .position(|&(lo, hi)| size_bdp >= lo && size_bdp < hi)
}

/// Print a table with a header row and aligned columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let formatted: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", formatted.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_and_mean_basics() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(100.0));
        let med = percentile(&v, 0.5).unwrap();
        assert!((med - 50.0).abs() <= 1.0);
        assert_eq!(mean(&v), Some(50.5));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn quartiles_are_ordered() {
        let v: Vec<f64> = (0..1000).map(|i| (i as f64).sin().abs() * 10.0).collect();
        let (q1, q2, q3) = quartiles(&v).unwrap();
        assert!(q1 <= q2 && q2 <= q3);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let points = cdf_points(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(points.len(), 4);
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in points.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn fig5_binning_matches_paper_bins() {
        assert_eq!(fig5_bin(0.5), Some(0));
        assert_eq!(fig5_bin(7.0), Some(1));
        assert_eq!(fig5_bin(50.0), Some(2));
        assert_eq!(fig5_bin(500.0), Some(3));
        assert_eq!(fig5_bin(5_000.0), Some(4));
        assert_eq!(fig5_bin(50_000.0), None);
    }

    #[test]
    fn times_ms_drops_unconverged_events() {
        let times = vec![
            Some(SimDuration::from_micros(500)),
            None,
            Some(SimDuration::from_millis(2)),
        ];
        let ms = times_ms(&times);
        assert_eq!(ms.len(), 2);
        assert!((ms[0] - 0.5).abs() < 1e-9);
        assert!((ms[1] - 2.0).abs() < 1e-9);
    }
}
